"""A dependency-free asyncio HTTP front end for :class:`QueryService`.

Deliberately minimal — stdlib only, HTTP/1.1 with ``Connection: close``
per request — because the point of :mod:`repro.serve` is the robustness
machinery behind the socket, not the socket itself.  Routes:

===============  ====  ===================================================
``/healthz``     GET   liveness probe → ``{"ok": true}``
``/stats``       GET   :meth:`QueryService.stats` (versioned: metrics,
                       breakers, pool, SLO board, flight recorder)
``/metrics``     GET   Prometheus-style text exposition
                       (:meth:`QueryService.metrics_text`)
``/trace``       GET   the most recent assembled request trace;
``/trace/<id>``  GET   one request's trace by ``request_id``
``/register``    POST  ``{"name", "domain", "relations"}`` or
                       ``{"name", "encoding"}`` (the paper's standard
                       encoding, via :func:`decode_database`)
``/prepare``     POST  ``{"name", "query", "output_vars"}``
``/call``        POST  ``{"tenant", "query", "db", "strategy"?,
                       "backend"?, "seed"?, "chaos"?, "trace"?}``
``/mutate``      POST  ``{"db", "op", "relation", "values"}``
===============  ====  ===================================================

Error mapping — the structured failure taxonomy over the wire:

* :class:`~repro.errors.Overloaded` → **429** with a ``Retry-After``
  header and ``{"error": "overloaded", "reason", "retry_after"}``;
* :class:`~repro.errors.ResourceExhausted` → **503** with
  ``{"error": "resource-exhausted", "kind", "limit", "used"}``;
* other :class:`~repro.errors.ReproError` (bad names, parse errors,
  malformed bodies) → **400**;
* anything else → **500** (and counts as a server bug in the smoke test).

429 and 503 bodies additionally carry a ``flight`` key — the flight
recorder's recent-event tail the service attached to the failure — so a
single error response is already a post-mortem.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Dict, Optional, Tuple

from repro.database.database import Database
from repro.database.encoding import decode_database
from repro.errors import (
    EvaluationError,
    Overloaded,
    ReproError,
    ResourceExhausted,
)
from repro.guard.chaos import ChaosPolicy
from repro.serve.service import QueryService

_MAX_BODY = 8 << 20


def _json_response(
    status: int,
    body: Dict[str, object],
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }
    payload = json.dumps(body, sort_keys=True, default=repr).encode()
    head = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode() + payload


def _text_response(status: int, text: str, content_type: str) -> bytes:
    """A plain-text response (the ``/metrics`` exposition document)."""
    payload = text.encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {'OK' if status == 200 else 'Error'}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode() + payload


def _chaos_from_body(spec: Optional[Dict[str, object]]) -> Optional[ChaosPolicy]:
    """Build a ChaosPolicy from a request body (smoke/chaos tooling only)."""
    if not spec:
        return None
    return ChaosPolicy(
        seed=int(spec.get("seed", 0)),
        fail_at=spec.get("fail_at"),
        fail_within=spec.get("fail_within"),
        fault_kinds=tuple(spec.get("fault_kinds", ("fault",))),
    )


def _database_from_body(body: Dict[str, object]) -> Database:
    if "encoding" in body:
        return decode_database(str(body["encoding"]).strip())
    try:
        domain = body["domain"]
        relations = {
            name: (int(spec["arity"]), [tuple(t) for t in spec["tuples"]])
            for name, spec in body["relations"].items()
        }
    except (KeyError, TypeError) as exc:
        raise EvaluationError(f"malformed database body: {exc}") from exc
    return Database.from_tuples(domain, relations)


class ServeHTTP:
    """One listening socket in front of one :class:`QueryService`."""

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await self._read_request(reader)
            if raw is None:
                return
            method, path, body = raw
            response = await self._route(method, path, body)
        except ConnectionError:
            return
        except Exception as exc:  # a handler bug, not a client error
            response = _json_response(
                500, {"error": "internal", "detail": str(exc)}
            )
        try:
            writer.write(response)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, object]]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        for line in header_block.decode("latin-1").split("\r\n"):
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = min(int(value.strip()), _MAX_BODY)
                except ValueError:
                    length = 0
        body: Dict[str, object] = {}
        if length > 0:
            data = await reader.readexactly(length)
            try:
                body = json.loads(data.decode())
            except ValueError:
                body = {"__malformed__": True}
        return method, path, body

    async def _route(
        self, method: str, path: str, body: Dict[str, object]
    ) -> bytes:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return _json_response(200, {"ok": True})
        if path == "/stats":
            return _json_response(200, self.service.stats())
        if path == "/metrics":
            return _text_response(
                200,
                self.service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/trace" or path.startswith("/trace/"):
            return self._trace_response(path)
        if method != "POST":
            return _json_response(405, {"error": "method-not-allowed"})
        if body.get("__malformed__"):
            return _json_response(400, {"error": "malformed-json"})
        try:
            if path == "/register":
                db = _database_from_body(body)
                self.service.register_database(str(body["name"]), db)
                return _json_response(
                    200, {"registered": body["name"], "size": db.size()}
                )
            if path == "/prepare":
                info = self.service.prepare(
                    str(body["name"]),
                    str(body["query"]),
                    tuple(body.get("output_vars", ())),
                )
                return _json_response(200, info)
            if path == "/call":
                response = await self.service.call(
                    str(body.get("tenant", "default")),
                    str(body["query"]),
                    str(body["db"]),
                    strategy=str(body.get("strategy", "monotone")),
                    backend=body.get("backend"),
                    request_seed=body.get("seed"),
                    chaos=_chaos_from_body(body.get("chaos")),
                    trace=bool(body.get("trace", False)),
                )
                return _json_response(200, response.as_dict())
            if path == "/mutate":
                outcome = self.service.mutate(
                    str(body["db"]),
                    str(body["op"]),
                    str(body["relation"]),
                    tuple(body["values"]),
                )
                return _json_response(200, outcome)
        except Overloaded as exc:
            retry_after = exc.retry_after if exc.retry_after > 0 else 0.001
            error: Dict[str, object] = {
                "error": "overloaded",
                "reason": exc.reason,
                "retry_after": retry_after,
                "tenant": exc.tenant,
                "detail": str(exc),
            }
            flight = getattr(exc, "flight", None)
            if flight is not None:
                error["flight"] = flight
            return _json_response(
                429,
                error,
                extra_headers=(
                    ("Retry-After", str(max(1, math.ceil(retry_after)))),
                ),
            )
        except ResourceExhausted as exc:
            error = {
                "error": "resource-exhausted",
                "kind": exc.kind,
                "limit": exc.limit,
                "used": exc.used,
                "detail": str(exc),
            }
            flight = getattr(exc, "flight", None)
            if flight is not None:
                error["flight"] = flight
            return _json_response(503, error)
        except (KeyError, TypeError, ValueError) as exc:
            return _json_response(
                400, {"error": "bad-request", "detail": repr(exc)}
            )
        except ReproError as exc:
            return _json_response(
                400,
                {
                    "error": "bad-request",
                    "kind": type(exc).__name__,
                    "detail": str(exc),
                },
            )
        return _json_response(404, {"error": "not-found", "path": path})

    def _trace_response(self, path: str) -> bytes:
        """``GET /trace`` (latest) or ``GET /trace/<request_id>``."""
        request_id = path[len("/trace/"):] if path.startswith("/trace/") else ""
        if request_id:
            spans = self.service.traces.get(request_id)
            if spans is None:
                return _json_response(
                    404, {"error": "unknown-trace", "request_id": request_id}
                )
            return _json_response(
                200, {"request_id": request_id, "spans": spans}
            )
        latest = self.service.traces.latest()
        if latest is None:
            return _json_response(404, {"error": "no-traces"})
        request_id, spans = latest
        return _json_response(200, {"request_id": request_id, "spans": spans})


__all__ = ["ServeHTTP"]
