"""Request execution: in-process evaluation and the supervised pool.

One request's evaluation is described by a plain picklable *payload*
dict — formula, database, output variables, and the per-attempt options
(strategy, backend, budget, chaos).  :func:`evaluate_payload` runs one
payload in the current process; :class:`WorkerPool` ships payloads to a
``ProcessPoolExecutor`` and supervises it:

* a worker process dying mid-request (a real crash, or a
  :class:`~repro.guard.chaos.ChaosPolicy` ``"crash"`` fault escalated
  via ``os._exit``) surfaces as ``BrokenProcessPool``, which poisons the
  whole executor — the pool is torn down with the non-blocking
  :func:`~repro.complexity.measure.shutdown_pool` helper and rebuilt on
  the next submit, and the failed request surfaces as the retryable
  :class:`WorkerCrashed`;
* pool workers keep a per-process :class:`~repro.perf.cache.SubqueryCache`
  that stays warm across the requests each worker serves — the pool
  analogue of the service's shared in-process cache.

Results cross the process boundary as plain dicts (sorted rows + stats),
never as live ``EvalResult`` objects.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, Optional

from repro.complexity.measure import shutdown_pool
from repro.errors import ReproError
from repro.guard.chaos import InjectedFault
from repro.perf.cache import SubqueryCache
from repro.perf.compile import PlanCache


class WorkerCrashed(ReproError):
    """A pool worker died mid-request; the request is safe to retry."""


def build_payload(
    formula,
    db,
    out,
    strategy: str = "monotone",
    k_limit: Optional[int] = None,
    backend: Optional[str] = None,
    budget=None,
    chaos=None,
    cache: bool = False,
    allow_crash: bool = False,
    request_id: Optional[str] = None,
    trace: bool = False,
    compile: Optional[bool] = None,
) -> Dict[str, object]:
    """The picklable description of one evaluation attempt.

    ``request_id`` is the cross-process trace context: it crosses the
    pool boundary inside the payload and comes back stamped on every
    worker-side span, so the service can reassemble one trace per
    request.  ``trace`` turns on span recording for the attempt — the
    spans return in the result dict as plain ``Span.to_dict()`` dicts.
    """
    return {
        "formula": formula,
        "db": db,
        "out": tuple(out),
        "strategy": strategy,
        "k_limit": k_limit,
        "backend": backend,
        "budget": budget,
        "chaos": chaos,
        "cache": bool(cache),
        "allow_crash": bool(allow_crash),
        "request_id": request_id,
        "trace": bool(trace),
        "compile": compile,
    }


def evaluate_payload(
    payload: Dict[str, object],
    cache: Optional[SubqueryCache] = None,
    plans: Optional[PlanCache] = None,
) -> Dict[str, object]:
    """Evaluate one payload and return a plain, picklable answer dict.

    ``cache`` overrides the payload's cache flag with a concrete
    instance — the inline path passes the service's shared cross-request
    cache; pool workers pass their per-process cache.  ``plans`` is the
    analogous compiled-plan cache (only consulted when the payload's
    ``compile`` flag is on).

    When the payload asks for tracing, evaluation runs under a private
    :class:`~repro.obs.tracer.Tracer` and the answer dict carries the
    recorded spans (as dicts, with the payload's ``request_id`` stamped
    into each span's attrs) plus the evaluating ``pid`` — everything the
    service needs to correlate the attempt back into its request trace.
    """
    from repro.core.engine import EvalOptions, evaluate
    from repro.core.fp_eval import FixpointStrategy
    from repro.obs.tracer import Tracer

    subquery_cache = cache if cache is not None else bool(payload["cache"])
    traced = bool(payload.get("trace"))
    tracer = Tracer() if traced else None
    compiled = payload.get("compile")
    options = EvalOptions(
        strategy=FixpointStrategy(payload["strategy"]),
        k_limit=payload["k_limit"],
        budget=payload["budget"],
        chaos=payload["chaos"],
        subquery_cache=subquery_cache,
        backend=payload["backend"],
        trace=tracer,
        compile=compiled,
        plan_cache=plans if plans is not None and compiled else None,
    )
    result = evaluate(
        payload["formula"], payload["db"], payload["out"], options
    )
    peak_rows = (
        result.guard.peak_rows
        if result.guard is not None and hasattr(result.guard, "peak_rows")
        else result.stats.max_intermediate_rows
    )
    answer: Dict[str, object] = {
        "rows": sorted(result.relation.tuples, key=repr),
        "arity": result.relation.arity,
        "language": result.language.value,
        "stats": result.stats.as_dict(),
        "peak_rows": int(peak_rows),
        "pid": os.getpid(),
    }
    if tracer is not None:
        request_id = payload.get("request_id")
        spans = []
        for span in tracer.spans:
            data = span.to_dict()
            if request_id is not None:
                attrs = dict(data.get("attrs") or {})
                attrs["request_id"] = request_id
                data["attrs"] = attrs
            spans.append(data)
        answer["spans"] = spans
    return answer


#: Exit status a worker dies with on an escalated chaos crash; chosen
#: from sysexits' EX_SOFTWARE so real segfault codes stay recognizable.
CRASH_EXIT_CODE = 70

#: The per-worker-process cross-request cache (pool workers only).
_WORKER_CACHE: Optional[SubqueryCache] = None

#: The per-worker-process compiled-plan cache (pool workers only) —
#: plans stay warm across the requests each worker serves, keyed by
#: database generation so mutations can never serve a stale plan.
_WORKER_PLANS: Optional[PlanCache] = None


def _worker_cache() -> SubqueryCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SubqueryCache()
    return _WORKER_CACHE


def _worker_plans() -> PlanCache:
    global _WORKER_PLANS
    if _WORKER_PLANS is None:
        _WORKER_PLANS = PlanCache()
    return _WORKER_PLANS


def worker_call(payload: Dict[str, object]) -> Dict[str, object]:
    """The pool-worker entry point (module-level, hence picklable).

    An :class:`InjectedFault` of kind ``"crash"`` escalates to a real
    process death when the payload allows it — that is how the chaos
    suite exercises genuine ``BrokenProcessPool`` recovery end to end.
    """
    cache = _worker_cache() if payload["cache"] else None
    plans = _worker_plans() if payload.get("compile") else None
    try:
        return evaluate_payload(payload, cache=cache, plans=plans)
    except InjectedFault as fault:
        if fault.kind == "crash" and payload.get("allow_crash"):
            os._exit(CRASH_EXIT_CODE)
        raise


class WorkerPool:
    """A self-healing ``ProcessPoolExecutor`` facade.

    The executor is created lazily and rebuilt after a crash poisons it;
    concurrent submits that all observe the same broken executor trigger
    exactly one rebuild.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self.restarts = 0

    @staticmethod
    def _context():
        """A start method whose workers inherit no server file descriptors.

        Plain ``fork`` duplicates every open fd into each worker — with
        an asyncio HTTP server in the parent, a forked worker keeps
        client-connection sockets alive, so ``Connection: close``
        responses never reach EOF and clients hang.  ``forkserver``
        (preferred: workers fork from a clean, import-warm server
        process) and ``spawn`` (portable fallback) both avoid that.
        """
        try:
            return multiprocessing.get_context("forkserver")
        except ValueError:
            return multiprocessing.get_context("spawn")

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context()
            )
        return self._pool

    async def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Run one payload in a worker; raises :class:`WorkerCrashed`
        (retryable) when the worker process died under it."""
        loop = asyncio.get_running_loop()
        pool = self._ensure()
        try:
            return await loop.run_in_executor(pool, worker_call, payload)
        except BrokenExecutor as exc:
            self._restart(pool)
            raise WorkerCrashed(
                f"worker process died mid-request: {exc}"
            ) from exc

    def _restart(self, broken: ProcessPoolExecutor) -> None:
        if self._pool is broken:
            shutdown_pool(broken, graceful=False)
            self._pool = None
            self.restarts += 1

    def close(self, graceful: bool = True) -> None:
        if self._pool is not None:
            shutdown_pool(self._pool, graceful=graceful)
            self._pool = None

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "up"
        return (
            f"WorkerPool(workers={self.workers}, {state}, "
            f"restarts={self.restarts})"
        )


__all__ = [
    "CRASH_EXIT_CODE",
    "WorkerCrashed",
    "WorkerPool",
    "build_payload",
    "evaluate_payload",
    "worker_call",
]
