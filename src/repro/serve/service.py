"""The multi-tenant query service: sessions, retries, degradation.

:class:`QueryService` is the tentpole of :mod:`repro.serve`.  It owns

* a **registry** of named databases and prepared queries — a query is
  parsed and validated once (:meth:`prepare`) and evaluated many times,
  the serving shape the paper's combined-complexity results argue for
  (the query is small and fixed, the data large and changing);
* an **admission controller** (:class:`~repro.serve.admission.AdmissionController`)
  in front of a bounded worker pool, with per-tenant
  :class:`~repro.serve.admission.TenantPolicy` budgets as the admission
  currency;
* a **retry loop** with deterministic jittered backoff and per-tenant
  :class:`~repro.serve.retry.CircuitBreaker` — transient faults
  (injected chaos, worker-process crashes) are retried, and a tenant
  whose backend keeps failing is short-circuited to serial in-process
  evaluation until the breaker's cooldown passes;
* a **degradation ladder** for genuine resource exhaustion — a request
  that blows a row/iteration budget is retried on a cheaper
  configuration (packed → sparse backend, seminaive → naive strategy,
  cache off) instead of failing outright, and the response reports
  exactly which fallback served it;
* **telemetry** — every request lands in the shared metrics registry
  and (optionally) a JSONL event log.

Every request resolves to exactly one of: a correct
:class:`ServeResponse`, a structured :class:`~repro.errors.Overloaded`
(shed, expired, or out of retries), or a structured
:class:`~repro.errors.ResourceExhausted` (the tenant's own budget, after
the ladder ran dry).  The chaos suite asserts that trichotomy under
sustained fault injection.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import Query
from repro.database.database import Database
from repro.errors import (
    EvaluationError,
    Overloaded,
    ReproError,
    ResourceExhausted,
)
from repro.guard.chaos import ChaosPolicy, InjectedFault
from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import SubqueryCache
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.telemetry import TelemetryLog
from repro.serve.workers import (
    WorkerCrashed,
    WorkerPool,
    build_payload,
    evaluate_payload,
)

#: Per-request chaos: one policy applied to every attempt (a persistent
#: fault), or a sequence indexed by attempt number (entry ``i`` hits
#: attempt ``i+1``; missing/``None`` entries leave the attempt clean —
#: the transient-fault shape retry loops exist for).
ChaosSpec = Union[None, ChaosPolicy, Sequence[Optional[ChaosPolicy]]]

#: When the shared cache holds at least this fraction of its row bound,
#: new requests bypass it (``"cache-bypass"``) instead of thrashing the
#: LRU under pressure.
CACHE_PRESSURE_FRACTION = 0.9


def _chaos_for_attempt(chaos: ChaosSpec, attempt: int) -> Optional[ChaosPolicy]:
    if chaos is None or isinstance(chaos, ChaosPolicy):
        return chaos
    index = attempt - 1
    if 0 <= index < len(chaos):
        return chaos[index]
    return None


@dataclass
class ServeResponse:
    """One successfully served request, with its full robustness trail."""

    tenant: str
    query: str
    db: str
    rows: Tuple[Tuple[object, ...], ...]
    arity: int
    language: str
    served_by: str  #: ``"pool"`` | ``"inline"`` | ``"breaker"``
    attempts: int
    retries: int
    degraded: Tuple[str, ...]
    queue_wait: float
    seconds: float = 0.0
    peak_rows: int = 0
    stats: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly rendering (rows become lists)."""
        return {
            "tenant": self.tenant,
            "query": self.query,
            "db": self.db,
            "rows": [list(row) for row in self.rows],
            "arity": self.arity,
            "language": self.language,
            "served_by": self.served_by,
            "attempts": self.attempts,
            "retries": self.retries,
            "degraded": list(self.degraded),
            "queue_wait": self.queue_wait,
            "seconds": self.seconds,
            "peak_rows": self.peak_rows,
        }


class QueryService:
    """A long-lived, multi-tenant bounded-variable query service.

    Parameters
    ----------
    max_concurrency / max_queue / expected_service_seconds:
        Admission knobs — see :class:`AdmissionController`.
    workers:
        ``0`` (default) evaluates inline in this process — deterministic
        and single-flight, the right mode for tests and benches.  ``> 0``
        runs a supervised :class:`~repro.serve.workers.WorkerPool` of
        that many processes; worker crashes are retried transparently.
    retry:
        The backoff schedule shared by all tenants (each tenant's
        ``max_attempts`` comes from its :class:`TenantPolicy`).
    cache:
        ``True`` shares one :class:`~repro.perf.cache.SubqueryCache`
        across requests (inline path) and enables per-process worker
        caches (pool path); an instance is used as-is; falsy disables.
    fault_injector:
        Optional ``request_index -> ChaosSpec`` hook — how the smoke
        test and the chaos bench inject faults into a live service
        without touching client code.
    clock / sleep:
        Injectable for deterministic tests (``sleep`` defaults to
        :func:`asyncio.sleep`).
    """

    def __init__(
        self,
        max_concurrency: int = 2,
        max_queue: int = 16,
        workers: int = 0,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Union[bool, SubqueryCache, None] = True,
        telemetry_path: Optional[str] = None,
        fault_injector: Optional[Callable[[int], ChaosSpec]] = None,
        expected_service_seconds: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], "asyncio.Future"]] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retry = retry if retry is not None else RetryPolicy()
        self._clock = clock
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            expected_service_seconds=expected_service_seconds,
            clock=clock,
            registry=self.registry,
        )
        self._pool = WorkerPool(workers) if workers > 0 else None
        if cache is True:
            self._cache: Optional[SubqueryCache] = SubqueryCache(
                registry=self.registry
            )
        elif isinstance(cache, SubqueryCache):
            self._cache = cache
        else:
            self._cache = None
        self.telemetry = TelemetryLog(telemetry_path)
        self.fault_injector = fault_injector
        self._dbs: Dict[str, Database] = {}
        self._queries: Dict[str, Query] = {}
        self._tenants: Dict[str, TenantPolicy] = {}
        self._default_policy = TenantPolicy()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._request_index = 0
        self._requests = self.registry.counter("serve.requests")
        self._ok = self.registry.counter("serve.ok")
        self._failed = self.registry.counter("serve.failed")
        self._retries = self.registry.counter("serve.retries")
        self._degraded = self.registry.counter("serve.degraded")
        self._crashes = self.registry.counter("serve.worker_crashes")
        self._short_circuit = self.registry.counter(
            "serve.breaker_short_circuit"
        )
        self._breaker_trips = self.registry.counter("serve.breaker_trips")
        self._answer_rows = self.registry.counter("serve.answer_rows")
        self._latency = self.registry.histogram("serve.latency_seconds")

    # -- registry --------------------------------------------------------

    def register_database(self, name: str, db: Database) -> None:
        """Register (or replace) a named database for serving."""
        if not isinstance(db, Database):
            raise EvaluationError(
                f"register_database expects a Database, got {type(db).__name__}"
            )
        self._dbs[name] = db

    def database(self, name: str) -> Database:
        try:
            return self._dbs[name]
        except KeyError:
            raise EvaluationError(f"unknown database {name!r}") from None

    def mutate(
        self, db_name: str, op: str, relation: str, values: Sequence[object]
    ) -> Dict[str, object]:
        """Apply one fact mutation to a registered database.

        Bumps the database's generation counter (so cache keys move on)
        and additionally invalidates the shared cache — generations make
        stale hits *impossible*, invalidation releases the now-dead rows.
        """
        db = self.database(db_name)
        if op == "add":
            applied = db.add_fact(relation, values)
        elif op == "remove":
            applied = db.remove_fact(relation, values)
        else:
            raise EvaluationError(
                f"unknown mutation op {op!r} (expected 'add' or 'remove')"
            )
        if applied and self._cache is not None:
            self._cache.invalidate()
        return {
            "applied": applied,
            "db": db_name,
            "generation": db.generation,
        }

    def prepare(
        self, name: str, text: str, output_vars: Sequence[str] = ()
    ) -> Dict[str, object]:
        """Parse, validate, and store a named query — compiled once here,
        evaluated many times by :meth:`call`."""
        query = Query.parse(text, output_vars=output_vars, name=name)
        self._queries[name] = query
        return {
            "name": name,
            "width": query.width,
            "language": query.language.value,
            "arity": query.arity,
        }

    def query(self, name: str) -> Query:
        try:
            return self._queries[name]
        except KeyError:
            raise EvaluationError(f"unknown prepared query {name!r}") from None

    def set_tenant(self, name: str, policy: TenantPolicy) -> None:
        self._tenants[name] = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._tenants.get(tenant, self._default_policy)

    def _breaker(self, tenant: str, policy: TenantPolicy) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=policy.breaker_threshold,
                cooldown=policy.breaker_cooldown,
                clock=self._clock,
            )
            self._breakers[tenant] = breaker
        return breaker

    # -- serving ---------------------------------------------------------

    async def call(
        self,
        tenant: str,
        query: str,
        db: str,
        strategy: str = "monotone",
        backend: Optional[str] = None,
        request_seed: Optional[int] = None,
        chaos: ChaosSpec = None,
    ) -> ServeResponse:
        """Serve one request end to end.

        Raises :class:`~repro.errors.Overloaded` when shed or out of
        retries, :class:`~repro.errors.ResourceExhausted` when the
        tenant's own budget ran out even after degradation, and other
        :class:`~repro.errors.ReproError` subclasses for invalid
        requests (unknown names, malformed queries) — those are never
        retried.
        """
        self._request_index += 1
        index = self._request_index
        self._requests.inc()
        compiled = self.query(query)
        database = self.database(db)
        policy = self.policy_for(tenant)
        if chaos is None and self.fault_injector is not None:
            chaos = self.fault_injector(index)
        seed = index if request_seed is None else request_seed
        try:
            queue_wait = await self.admission.admit(
                tenant, weight=policy.weight, deadline=policy.deadline()
            )
        except Overloaded as exc:
            self._failed.inc()
            self._emit_failure(tenant, query, db, "overloaded", exc.reason)
            raise
        start = self._clock()
        try:
            response = await self._serve(
                tenant, policy, compiled, database,
                query, db, strategy, backend, seed, chaos, queue_wait,
            )
        except Overloaded as exc:
            self._failed.inc()
            self._emit_failure(tenant, query, db, "overloaded", exc.reason)
            raise
        except ResourceExhausted as exc:
            self._failed.inc()
            self._emit_failure(tenant, query, db, "exhausted", exc.kind)
            raise
        except ReproError as exc:
            self._failed.inc()
            self._emit_failure(tenant, query, db, "error", str(exc))
            raise
        finally:
            self.admission.release(self._clock() - start)
        response.seconds = self._clock() - start
        self._ok.inc()
        self._answer_rows.inc(len(response.rows))
        self._latency.observe(response.seconds)
        self.telemetry.emit(
            {
                "event": "call",
                "outcome": "ok",
                "tenant": tenant,
                "query": query,
                "db": db,
                "served_by": response.served_by,
                "attempts": response.attempts,
                "retries": response.retries,
                "degraded": list(response.degraded),
                "queue_wait": round(queue_wait, 6),
                "seconds": round(response.seconds, 6),
                "rows": len(response.rows),
            }
        )
        return response

    async def _serve(
        self,
        tenant: str,
        policy: TenantPolicy,
        compiled: Query,
        database: Database,
        query_name: str,
        db_name: str,
        strategy: str,
        backend: Optional[str],
        seed: int,
        chaos: ChaosSpec,
        queue_wait: float,
    ) -> ServeResponse:
        """The retry/degradation loop for one admitted request."""
        breaker = self._breaker(tenant, policy)
        trips_before = breaker.trips
        if self._pool is None:
            served_by = "inline"
        elif breaker.allow():
            served_by = "pool"
        else:
            served_by = "breaker"
            self._short_circuit.inc()
        degraded: List[str] = []
        cache_on = self._cache is not None
        if cache_on and self._cache_pressured():
            cache_on = False
            degraded.append("cache-bypass")
            self._degraded.inc()
        cur_strategy = strategy
        cur_backend = backend
        delays = self.retry.delays(seed)
        max_attempts = max(1, policy.max_attempts)
        attempts = 0
        retries = 0
        while True:
            attempts += 1
            payload = build_payload(
                compiled.formula,
                database,
                compiled.output_vars,
                strategy=cur_strategy,
                k_limit=None,
                backend=cur_backend,
                budget=policy.budget,
                chaos=_chaos_for_attempt(chaos, attempts),
                cache=cache_on,
                allow_crash=served_by == "pool",
            )
            try:
                if served_by == "pool":
                    raw = await self._pool.submit(payload)
                else:
                    raw = evaluate_payload(
                        payload, cache=self._cache if cache_on else None
                    )
                breaker.record_success()
                return ServeResponse(
                    tenant=tenant,
                    query=query_name,
                    db=db_name,
                    rows=tuple(tuple(row) for row in raw["rows"]),
                    arity=int(raw["arity"]),
                    language=str(raw["language"]),
                    served_by=served_by,
                    attempts=attempts,
                    retries=retries,
                    degraded=tuple(degraded),
                    queue_wait=queue_wait,
                    peak_rows=int(raw["peak_rows"]),
                    stats=dict(raw["stats"]),
                )
            except (InjectedFault, WorkerCrashed) as exc:
                if isinstance(exc, WorkerCrashed):
                    self._crashes.inc()
                breaker.record_failure()
                self._breaker_trips.set(
                    self._breaker_trips.value + breaker.trips - trips_before
                )
                trips_before = breaker.trips
                if attempts >= max_attempts:
                    raise Overloaded(
                        f"request failed after {attempts} attempts "
                        f"(last: {exc})",
                        retry_after=next(delays),
                        reason="retries-exhausted",
                        tenant=tenant,
                    ) from exc
                retries += 1
                self._retries.inc()
                if served_by == "pool" and not breaker.allow():
                    served_by = "breaker"
                    self._short_circuit.inc()
                await self._sleep(next(delays))
            except ResourceExhausted as exc:
                # The tenant's own budget, not a backend fault: never a
                # breaker failure, and retrying the same configuration
                # would only exhaust it again — walk the ladder instead.
                step = self._degrade_step(
                    exc, cur_backend, cur_strategy, cache_on
                )
                if step is None:
                    raise
                tag, cur_backend, cur_strategy, cache_on = step
                degraded.append(tag)
                self._degraded.inc()
                attempts -= 1  # ladder rungs are free; retries are not

    def _degrade_step(
        self,
        exc: ResourceExhausted,
        backend: Optional[str],
        strategy: str,
        cache_on: bool,
    ) -> Optional[Tuple[str, Optional[str], str, bool]]:
        """The next degradation rung, or ``None`` when the ladder is dry.

        Deadline exhaustion is never degraded — a cheaper configuration
        cannot recover wall-clock time already spent.
        """
        if exc.kind == "deadline":
            return None
        if backend == "packed":
            return ("packed→sparse", "sparse", strategy, cache_on)
        if strategy == "seminaive":
            return ("seminaive→naive", backend, "naive", cache_on)
        if cache_on:
            return ("cache-off", backend, strategy, False)
        return None

    def _cache_pressured(self) -> bool:
        cache = self._cache
        return (
            cache is not None
            and cache.max_total_rows > 0
            and cache.total_rows
            >= CACHE_PRESSURE_FRACTION * cache.max_total_rows
        )

    def _emit_failure(
        self, tenant: str, query: str, db: str, outcome: str, detail: str
    ) -> None:
        self.telemetry.emit(
            {
                "event": "call",
                "outcome": outcome,
                "detail": detail,
                "tenant": tenant,
                "query": query,
                "db": db,
            }
        )

    # -- observability / lifecycle --------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` document: metrics snapshot + structural state."""
        return {
            "metrics": self.registry.snapshot(),
            "admission": {
                "running": self.admission.running,
                "queued": self.admission.queued,
                "predicted_wait": self.admission.predicted_wait(),
            },
            "breakers": {
                tenant: {
                    "state": breaker.state,
                    "consecutive_failures": breaker.consecutive_failures,
                    "trips": breaker.trips,
                }
                for tenant, breaker in sorted(self._breakers.items())
            },
            "pool": {
                "workers": self._pool.workers if self._pool else 0,
                "restarts": self._pool.restarts if self._pool else 0,
            },
            "databases": sorted(self._dbs),
            "queries": sorted(self._queries),
            "cache": repr(self._cache) if self._cache is not None else None,
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
        self.telemetry.close()

    def __repr__(self) -> str:
        return (
            f"QueryService(queries={len(self._queries)}, "
            f"dbs={len(self._dbs)}, {self.admission!r})"
        )


__all__ = ["ChaosSpec", "QueryService", "ServeResponse"]
