"""The multi-tenant query service: sessions, retries, degradation.

:class:`QueryService` is the tentpole of :mod:`repro.serve`.  It owns

* a **registry** of named databases and prepared queries — a query is
  parsed and validated once (:meth:`prepare`) and evaluated many times,
  the serving shape the paper's combined-complexity results argue for
  (the query is small and fixed, the data large and changing);
* an **admission controller** (:class:`~repro.serve.admission.AdmissionController`)
  in front of a bounded worker pool, with per-tenant
  :class:`~repro.serve.admission.TenantPolicy` budgets as the admission
  currency;
* a **retry loop** with deterministic jittered backoff and per-tenant
  :class:`~repro.serve.retry.CircuitBreaker` — transient faults
  (injected chaos, worker-process crashes) are retried, and a tenant
  whose backend keeps failing is short-circuited to serial in-process
  evaluation until the breaker's cooldown passes;
* a **degradation ladder** for genuine resource exhaustion — a request
  that blows a row/iteration budget is retried on a cheaper
  configuration (packed → sparse backend, seminaive → naive strategy,
  cache off) instead of failing outright, and the response reports
  exactly which fallback served it;
* **telemetry** — every request lands in the shared metrics registry
  and (optionally) a JSONL event log;
* an **observability pipeline** threaded through all of the above:
  every request gets a deterministic ``request_id`` that crosses the
  worker-pool boundary and comes back stamped on the worker-side spans
  (reassembled into one trace per request, kept in a bounded
  :class:`~repro.obs.correlate.TraceStore`), rolling 60s/300s windows
  feed per-tenant :class:`~repro.obs.slo.SLOBoard` burn rates, the
  always-on :class:`~repro.obs.flight.FlightRecorder` keeps the recent
  event ring (dumped as a JSON post-mortem on crashes and terminal
  failures), and :meth:`QueryService.metrics_text` renders everything
  as the ``GET /metrics`` Prometheus exposition.

Every request resolves to exactly one of: a correct
:class:`ServeResponse`, a structured :class:`~repro.errors.Overloaded`
(shed, expired, or out of retries), or a structured
:class:`~repro.errors.ResourceExhausted` (the tenant's own budget, after
the ladder ran dry).  The chaos suite asserts that trichotomy under
sustained fault injection.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import Query
from repro.database.database import Database
from repro.errors import (
    EvaluationError,
    Overloaded,
    ReproError,
    ResourceExhausted,
)
from repro.guard.chaos import ChaosPolicy, InjectedFault
from repro.obs.correlate import (
    TraceStore,
    assemble_trace,
    attempt_record,
    new_request_id,
)
from repro.obs.expo import Family, gauge_family, registry_families, render_families
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.slo import SLOBoard, SLOPolicy
from repro.perf.cache import SubqueryCache
from repro.perf.compile import PlanCache, resolve_compile
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.telemetry import TelemetryLog
from repro.serve.workers import (
    WorkerCrashed,
    WorkerPool,
    build_payload,
    evaluate_payload,
)

#: Per-request chaos: one policy applied to every attempt (a persistent
#: fault), or a sequence indexed by attempt number (entry ``i`` hits
#: attempt ``i+1``; missing/``None`` entries leave the attempt clean —
#: the transient-fault shape retry loops exist for).
ChaosSpec = Union[None, ChaosPolicy, Sequence[Optional[ChaosPolicy]]]

#: When the shared cache holds at least this fraction of its row bound,
#: new requests bypass it (``"cache-bypass"``) instead of thrashing the
#: LRU under pressure.
CACHE_PRESSURE_FRACTION = 0.9

#: Version of the ``/stats`` document layout; bump on key changes (the
#: ``EVAL_JSON_SCHEMA_VERSION`` pattern).  v2 added ``schema_version``,
#: ``uptime_seconds``, per-tenant breaker cooldowns, ``slo``,
#: ``flight``, and ``traces``.
STATS_SCHEMA_VERSION = 2

#: How many trailing flight-recorder events ride inside a structured
#: failure response (the full ring goes in the on-disk dump).
FLIGHT_TAIL = 32


def _chaos_for_attempt(chaos: ChaosSpec, attempt: int) -> Optional[ChaosPolicy]:
    if chaos is None or isinstance(chaos, ChaosPolicy):
        return chaos
    index = attempt - 1
    if 0 <= index < len(chaos):
        return chaos[index]
    return None


@dataclass
class ServeResponse:
    """One successfully served request, with its full robustness trail."""

    tenant: str
    query: str
    db: str
    rows: Tuple[Tuple[object, ...], ...]
    arity: int
    language: str
    served_by: str  #: ``"pool"`` | ``"inline"`` | ``"breaker"``
    attempts: int
    retries: int
    degraded: Tuple[str, ...]
    queue_wait: float
    seconds: float = 0.0
    peak_rows: int = 0
    stats: Dict[str, float] = field(default_factory=dict)
    request_id: str = ""
    trace: Optional[List[Dict[str, object]]] = None

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly rendering (rows become lists)."""
        document: Dict[str, object] = {
            "tenant": self.tenant,
            "query": self.query,
            "db": self.db,
            "rows": [list(row) for row in self.rows],
            "arity": self.arity,
            "language": self.language,
            "served_by": self.served_by,
            "attempts": self.attempts,
            "retries": self.retries,
            "degraded": list(self.degraded),
            "queue_wait": self.queue_wait,
            "seconds": self.seconds,
            "peak_rows": self.peak_rows,
            "request_id": self.request_id,
        }
        if self.trace is not None:
            document["trace"] = list(self.trace)
        return document


class QueryService:
    """A long-lived, multi-tenant bounded-variable query service.

    Parameters
    ----------
    max_concurrency / max_queue / expected_service_seconds:
        Admission knobs — see :class:`AdmissionController`.
    workers:
        ``0`` (default) evaluates inline in this process — deterministic
        and single-flight, the right mode for tests and benches.  ``> 0``
        runs a supervised :class:`~repro.serve.workers.WorkerPool` of
        that many processes; worker crashes are retried transparently.
    retry:
        The backoff schedule shared by all tenants (each tenant's
        ``max_attempts`` comes from its :class:`TenantPolicy`).
    cache:
        ``True`` shares one :class:`~repro.perf.cache.SubqueryCache`
        across requests (inline path) and enables per-process worker
        caches (pool path); an instance is used as-is; falsy disables.
    compile:
        Route evaluation through the straight-line query compiler
        (:mod:`repro.perf.compile`).  ``None`` (default) consults
        ``REPRO_COMPILE``.  When on, the service keeps one shared
        generation-keyed :class:`~repro.perf.compile.PlanCache`
        (``compile.*`` counters land in the registry and ``/metrics``),
        prepared queries compile against every registered database at
        :meth:`prepare` time, and pool workers keep a per-process plan
        cache — the compiled analogue of the worker subquery cache.
    fault_injector:
        Optional ``request_index -> ChaosSpec`` hook — how the smoke
        test and the chaos bench inject faults into a live service
        without touching client code.
    slo:
        The :class:`~repro.obs.slo.SLOPolicy` every tenant's burn rate
        is computed against (``None`` → the default objective).
    flight_dump_dir:
        When set, worker crashes and terminal failures dump the flight
        recorder's event ring as a JSON post-mortem into this directory.
    clock / sleep:
        Injectable for deterministic tests (``sleep`` defaults to
        :func:`asyncio.sleep`).
    """

    def __init__(
        self,
        max_concurrency: int = 2,
        max_queue: int = 16,
        workers: int = 0,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Union[bool, SubqueryCache, None] = True,
        compile: Union[bool, None] = None,
        telemetry_path: Optional[str] = None,
        fault_injector: Optional[Callable[[int], ChaosSpec]] = None,
        slo: Optional[SLOPolicy] = None,
        flight_dump_dir: Optional[str] = None,
        flight_capacity: int = 512,
        trace_capacity: int = 64,
        expected_service_seconds: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], "asyncio.Future"]] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retry = retry if retry is not None else RetryPolicy()
        self._clock = clock
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            expected_service_seconds=expected_service_seconds,
            clock=clock,
            registry=self.registry,
        )
        self._pool = WorkerPool(workers) if workers > 0 else None
        if cache is True:
            self._cache: Optional[SubqueryCache] = SubqueryCache(
                registry=self.registry
            )
        elif isinstance(cache, SubqueryCache):
            self._cache = cache
        else:
            self._cache = None
        self._compile = resolve_compile(compile)
        self._plans: Optional[PlanCache] = (
            PlanCache(registry=self.registry) if self._compile else None
        )
        self.telemetry = TelemetryLog(telemetry_path)
        self.fault_injector = fault_injector
        self.started = clock()
        self.slo = SLOBoard(slo if slo is not None else SLOPolicy(), clock=clock)
        self.flight = FlightRecorder(capacity=flight_capacity, clock=clock)
        self.flight_dump_dir = flight_dump_dir
        self.traces = TraceStore(capacity=trace_capacity)
        self._dbs: Dict[str, Database] = {}
        self._queries: Dict[str, Query] = {}
        self._tenants: Dict[str, TenantPolicy] = {}
        self._default_policy = TenantPolicy()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._request_index = 0
        self._requests = self.registry.counter("serve.requests")
        self._ok = self.registry.counter("serve.ok")
        self._failed = self.registry.counter("serve.failed")
        self._retries = self.registry.counter("serve.retries")
        self._degraded = self.registry.counter("serve.degraded")
        self._crashes = self.registry.counter("serve.worker_crashes")
        self._short_circuit = self.registry.counter(
            "serve.breaker_short_circuit"
        )
        self._breaker_trips = self.registry.counter("serve.breaker_trips")
        self._answer_rows = self.registry.counter("serve.answer_rows")
        self._latency = self.registry.histogram(
            "serve.latency_seconds", bounds=LATENCY_BUCKETS
        )

    # -- registry --------------------------------------------------------

    def register_database(self, name: str, db: Database) -> None:
        """Register (or replace) a named database for serving."""
        if not isinstance(db, Database):
            raise EvaluationError(
                f"register_database expects a Database, got {type(db).__name__}"
            )
        self._dbs[name] = db
        if self._plans is not None:
            for query in self._queries.values():
                self._warm_plans(query, [db])

    def database(self, name: str) -> Database:
        try:
            return self._dbs[name]
        except KeyError:
            raise EvaluationError(f"unknown database {name!r}") from None

    def mutate(
        self, db_name: str, op: str, relation: str, values: Sequence[object]
    ) -> Dict[str, object]:
        """Apply one fact mutation to a registered database.

        Bumps the database's generation counter (so cache keys move on)
        and additionally invalidates the shared cache — generations make
        stale hits *impossible*, invalidation releases the now-dead rows.
        """
        db = self.database(db_name)
        if op == "add":
            applied = db.add_fact(relation, values)
        elif op == "remove":
            applied = db.remove_fact(relation, values)
        else:
            raise EvaluationError(
                f"unknown mutation op {op!r} (expected 'add' or 'remove')"
            )
        if applied and self._cache is not None:
            self._cache.invalidate()
        if applied and self._plans is not None:
            # generation keys already make stale plans unreachable; the
            # invalidation releases their folded constant registers
            self._plans.invalidate()
        return {
            "applied": applied,
            "db": db_name,
            "generation": db.generation,
        }

    def prepare(
        self, name: str, text: str, output_vars: Sequence[str] = ()
    ) -> Dict[str, object]:
        """Parse, validate, and store a named query — compiled once here,
        evaluated many times by :meth:`call`.

        With the query compiler on, the formula also compiles into the
        shared plan cache against every registered database now, so the
        first ``call`` starts on the plan-cache hit path."""
        query = Query.parse(text, output_vars=output_vars, name=name)
        self._queries[name] = query
        info = {
            "name": name,
            "width": query.width,
            "language": query.language.value,
            "arity": query.arity,
        }
        if self._plans is not None:
            info["compiled_plans"] = self._warm_plans(
                query, self._dbs.values()
            )
        return info

    def _warm_plans(self, query: Query, dbs) -> int:
        """Build (or confirm cached) plans for ``query`` over ``dbs``.

        Pure-FO queries compile whole; fixpoint queries warm their bodies
        with the recursion relation dynamic — the same per-round plan the
        evaluator looks up, so the first request pays no compile latency.
        Returns how many compiled regions are now cached across ``dbs``.
        """
        from repro.kernel.backend import resolve_backend
        from repro.perf.compile import warm_plans

        built = 0
        for db in dbs:
            backend = resolve_backend(None, db.domain)
            built += warm_plans(query.formula, db, backend, self._plans)
        return built

    def query(self, name: str) -> Query:
        try:
            return self._queries[name]
        except KeyError:
            raise EvaluationError(f"unknown prepared query {name!r}") from None

    def set_tenant(self, name: str, policy: TenantPolicy) -> None:
        self._tenants[name] = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._tenants.get(tenant, self._default_policy)

    def _breaker(self, tenant: str, policy: TenantPolicy) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=policy.breaker_threshold,
                cooldown=policy.breaker_cooldown,
                clock=self._clock,
            )
            self._breakers[tenant] = breaker
        return breaker

    # -- serving ---------------------------------------------------------

    async def call(
        self,
        tenant: str,
        query: str,
        db: str,
        strategy: str = "monotone",
        backend: Optional[str] = None,
        request_seed: Optional[int] = None,
        chaos: ChaosSpec = None,
        trace: bool = False,
    ) -> ServeResponse:
        """Serve one request end to end.

        Raises :class:`~repro.errors.Overloaded` when shed or out of
        retries, :class:`~repro.errors.ResourceExhausted` when the
        tenant's own budget ran out even after degradation, and other
        :class:`~repro.errors.ReproError` subclasses for invalid
        requests (unknown names, malformed queries) — those are never
        retried.

        ``trace=True`` records worker-side spans for every attempt and
        returns the assembled cross-process trace on the response (the
        trace is also kept in :attr:`traces` either way a successful
        traced request completes).
        """
        self._request_index += 1
        index = self._request_index
        request_id = new_request_id(index)
        arrival = self._clock()
        self._requests.inc()
        self.flight.record(
            "request", request_id=request_id, tenant=tenant,
            query=query, db=db,
        )
        compiled = self.query(query)
        database = self.database(db)
        policy = self.policy_for(tenant)
        if chaos is None and self.fault_injector is not None:
            chaos = self.fault_injector(index)
        seed = index if request_seed is None else request_seed
        try:
            queue_wait = await self.admission.admit(
                tenant, weight=policy.weight, deadline=policy.deadline()
            )
        except Overloaded as exc:
            self._fail(
                tenant, query, db, "overloaded", exc.reason,
                request_id, arrival, exc,
            )
            raise
        start = self._clock()
        try:
            response = await self._serve(
                tenant, policy, compiled, database,
                query, db, strategy, backend, seed, chaos, queue_wait,
                request_id, trace,
            )
        except Overloaded as exc:
            self._fail(
                tenant, query, db, "overloaded", exc.reason,
                request_id, arrival, exc,
                dump_reason=(
                    "retries-exhausted"
                    if exc.reason == "retries-exhausted"
                    else None
                ),
            )
            raise
        except ResourceExhausted as exc:
            self._fail(
                tenant, query, db, "exhausted", exc.kind,
                request_id, arrival, exc,
                dump_reason="resource-exhausted",
            )
            raise
        except ReproError as exc:
            self._fail(
                tenant, query, db, "error", str(exc),
                request_id, arrival, exc,
            )
            raise
        finally:
            self.admission.release(self._clock() - start)
        response.seconds = self._clock() - start
        response.request_id = request_id
        self._ok.inc()
        self._answer_rows.inc(len(response.rows))
        self._latency.observe(response.seconds)
        self.slo.record(tenant, True, response.seconds)
        self.flight.record(
            "ok", request_id=request_id, tenant=tenant,
            served_by=response.served_by, attempts=response.attempts,
            seconds=round(response.seconds, 6),
        )
        self.telemetry.emit(
            {
                "event": "call",
                "outcome": "ok",
                "request_id": request_id,
                "tenant": tenant,
                "query": query,
                "db": db,
                "served_by": response.served_by,
                "attempts": response.attempts,
                "retries": response.retries,
                "degraded": list(response.degraded),
                "queue_wait": round(queue_wait, 6),
                "seconds": round(response.seconds, 6),
                "rows": len(response.rows),
            }
        )
        return response

    def _fail(
        self,
        tenant: str,
        query: str,
        db: str,
        outcome: str,
        detail: str,
        request_id: str,
        arrival: float,
        exc: ReproError,
        dump_reason: Optional[str] = None,
    ) -> None:
        """The shared failure path: counters, SLO, flight, telemetry.

        Attaches the flight-recorder tail to the exception (the HTTP
        layer ships it in the error body) and, for terminal failures
        with a configured dump directory, writes the full-ring JSON
        post-mortem.
        """
        elapsed = self._clock() - arrival
        self._failed.inc()
        self.slo.record(tenant, False, elapsed)
        self.flight.record(
            outcome, request_id=request_id, tenant=tenant, detail=detail,
        )
        exc.flight = self.flight.snapshot(limit=FLIGHT_TAIL)
        if dump_reason is not None and self.flight_dump_dir is not None:
            self.flight.dump(
                self.flight_dump_dir,
                reason=dump_reason,
                request_id=request_id,
                extra={"tenant": tenant, "query": query, "db": db},
            )
        self._emit_failure(
            tenant, query, db, outcome, detail, request_id=request_id
        )

    async def _serve(
        self,
        tenant: str,
        policy: TenantPolicy,
        compiled: Query,
        database: Database,
        query_name: str,
        db_name: str,
        strategy: str,
        backend: Optional[str],
        seed: int,
        chaos: ChaosSpec,
        queue_wait: float,
        request_id: str,
        trace: bool,
    ) -> ServeResponse:
        """The retry/degradation loop for one admitted request."""
        breaker = self._breaker(tenant, policy)
        trips_before = breaker.trips
        if self._pool is None:
            served_by = "inline"
        elif breaker.allow():
            served_by = "pool"
        else:
            served_by = "breaker"
            self._short_circuit.inc()
        degraded: List[str] = []
        cache_on = self._cache is not None
        if cache_on and self._cache_pressured():
            cache_on = False
            degraded.append("cache-bypass")
            self._degraded.inc()
        cur_strategy = strategy
        cur_backend = backend
        delays = self.retry.delays(seed)
        max_attempts = max(1, policy.max_attempts)
        attempts = 0
        retries = 0
        serve_start = self._clock()
        attempt_trail: List[Dict[str, object]] = []
        while True:
            attempts += 1
            payload = build_payload(
                compiled.formula,
                database,
                compiled.output_vars,
                strategy=cur_strategy,
                k_limit=None,
                backend=cur_backend,
                budget=policy.budget,
                chaos=_chaos_for_attempt(chaos, attempts),
                cache=cache_on,
                allow_crash=served_by == "pool",
                request_id=request_id,
                trace=trace,
                compile=self._compile,
            )
            attempt_start = self._clock() - serve_start
            try:
                if served_by == "pool":
                    raw = await self._pool.submit(payload)
                else:
                    raw = evaluate_payload(
                        payload,
                        cache=self._cache if cache_on else None,
                        plans=self._plans,
                    )
                breaker.record_success()
                attempt_trail.append(
                    attempt_record(
                        attempts,
                        served_by,
                        attempt_start,
                        self._clock() - serve_start - attempt_start,
                        "ok",
                        spans=raw.get("spans"),
                        pid=raw.get("pid"),
                    )
                )
                spans = assemble_trace(
                    request_id,
                    attempt_trail,
                    duration=self._clock() - serve_start,
                    tenant=tenant,
                    query=query_name,
                    db=db_name,
                    served_by=served_by,
                )
                self.traces.put(request_id, spans)
                return ServeResponse(
                    tenant=tenant,
                    query=query_name,
                    db=db_name,
                    rows=tuple(tuple(row) for row in raw["rows"]),
                    arity=int(raw["arity"]),
                    language=str(raw["language"]),
                    served_by=served_by,
                    attempts=attempts,
                    retries=retries,
                    degraded=tuple(degraded),
                    queue_wait=queue_wait,
                    peak_rows=int(raw["peak_rows"]),
                    stats=dict(raw["stats"]),
                    request_id=request_id,
                    trace=spans if trace else None,
                )
            except (InjectedFault, WorkerCrashed) as exc:
                crashed = isinstance(exc, WorkerCrashed)
                attempt_trail.append(
                    attempt_record(
                        attempts,
                        served_by,
                        attempt_start,
                        self._clock() - serve_start - attempt_start,
                        "crash" if crashed else "fault",
                    )
                )
                if crashed:
                    self._crashes.inc()
                    self.flight.record(
                        "crash", request_id=request_id, tenant=tenant,
                        attempt=attempts, detail=str(exc),
                    )
                    if self.flight_dump_dir is not None:
                        self.flight.dump(
                            self.flight_dump_dir,
                            reason="worker-crash",
                            request_id=request_id,
                            extra={"tenant": tenant, "query": query_name},
                        )
                else:
                    self.flight.record(
                        "fault", request_id=request_id, tenant=tenant,
                        attempt=attempts, detail=str(exc),
                    )
                breaker.record_failure()
                self._breaker_trips.set(
                    self._breaker_trips.value + breaker.trips - trips_before
                )
                trips_before = breaker.trips
                if attempts >= max_attempts:
                    self.traces.put(
                        request_id,
                        assemble_trace(
                            request_id,
                            attempt_trail,
                            duration=self._clock() - serve_start,
                            tenant=tenant,
                            query=query_name,
                            db=db_name,
                            outcome="retries-exhausted",
                        ),
                    )
                    raise Overloaded(
                        f"request failed after {attempts} attempts "
                        f"(last: {exc})",
                        retry_after=next(delays),
                        reason="retries-exhausted",
                        tenant=tenant,
                    ) from exc
                retries += 1
                self._retries.inc()
                self.flight.record(
                    "retry", request_id=request_id, tenant=tenant,
                    attempt=attempts,
                )
                if served_by == "pool" and not breaker.allow():
                    served_by = "breaker"
                    self._short_circuit.inc()
                await self._sleep(next(delays))
            except ResourceExhausted as exc:
                # The tenant's own budget, not a backend fault: never a
                # breaker failure, and retrying the same configuration
                # would only exhaust it again — walk the ladder instead.
                attempt_trail.append(
                    attempt_record(
                        attempts,
                        served_by,
                        attempt_start,
                        self._clock() - serve_start - attempt_start,
                        f"exhausted:{exc.kind}",
                    )
                )
                step = self._degrade_step(
                    exc, cur_backend, cur_strategy, cache_on
                )
                if step is None:
                    self.traces.put(
                        request_id,
                        assemble_trace(
                            request_id,
                            attempt_trail,
                            duration=self._clock() - serve_start,
                            tenant=tenant,
                            query=query_name,
                            db=db_name,
                            outcome="resource-exhausted",
                        ),
                    )
                    raise
                tag, cur_backend, cur_strategy, cache_on = step
                degraded.append(tag)
                self._degraded.inc()
                self.flight.record(
                    "degrade", request_id=request_id, tenant=tenant,
                    rung=tag,
                )
                attempts -= 1  # ladder rungs are free; retries are not

    def _degrade_step(
        self,
        exc: ResourceExhausted,
        backend: Optional[str],
        strategy: str,
        cache_on: bool,
    ) -> Optional[Tuple[str, Optional[str], str, bool]]:
        """The next degradation rung, or ``None`` when the ladder is dry.

        Deadline exhaustion is never degraded — a cheaper configuration
        cannot recover wall-clock time already spent.
        """
        if exc.kind == "deadline":
            return None
        if backend == "packed":
            return ("packed→sparse", "sparse", strategy, cache_on)
        if strategy == "seminaive":
            return ("seminaive→naive", backend, "naive", cache_on)
        if cache_on:
            return ("cache-off", backend, strategy, False)
        return None

    def _cache_pressured(self) -> bool:
        cache = self._cache
        return (
            cache is not None
            and cache.max_total_rows > 0
            and cache.total_rows
            >= CACHE_PRESSURE_FRACTION * cache.max_total_rows
        )

    def _emit_failure(
        self,
        tenant: str,
        query: str,
        db: str,
        outcome: str,
        detail: str,
        request_id: Optional[str] = None,
    ) -> None:
        event: Dict[str, object] = {
            "event": "call",
            "outcome": outcome,
            "detail": detail,
            "tenant": tenant,
            "query": query,
            "db": db,
        }
        if request_id is not None:
            event["request_id"] = request_id
        self.telemetry.emit(event)

    # -- observability / lifecycle --------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` document: metrics snapshot + structural state.

        The layout is versioned (``schema_version``) so dashboards can
        detect incompatible changes — the serving twin of the run-record
        schema version.
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "uptime_seconds": max(0.0, self._clock() - self.started),
            "metrics": self.registry.snapshot(),
            "admission": {
                "running": self.admission.running,
                "queued": self.admission.queued,
                "predicted_wait": self.admission.predicted_wait(),
            },
            "breakers": {
                tenant: {
                    "state": breaker.state,
                    "consecutive_failures": breaker.consecutive_failures,
                    "trips": breaker.trips,
                    "cooldown_remaining": breaker.cooldown_remaining(),
                }
                for tenant, breaker in sorted(self._breakers.items())
            },
            "pool": {
                "workers": self._pool.workers if self._pool else 0,
                "restarts": self._pool.restarts if self._pool else 0,
            },
            "databases": sorted(self._dbs),
            "queries": sorted(self._queries),
            "cache": repr(self._cache) if self._cache is not None else None,
            "slo": self.slo.snapshot(),
            "flight": {
                "captured": self.flight.captured,
                "dropped": self.flight.dropped,
                "recorded": self.flight.recorded,
                "last_dump": self.flight.last_dump,
            },
            "traces": {
                "stored": len(self.traces),
                "ids": self.traces.ids()[-8:],
            },
        }

    def metrics_families(self) -> List[Family]:
        """Every exposition family: registry + SLO windows + flight ring."""
        families = registry_families(self.registry)
        families.append(
            gauge_family(
                "serve.uptime_seconds",
                "Seconds since the service started.",
                [({}, max(0.0, self._clock() - self.started))],
            )
        )
        burn, avail, latency, requests, errors = [], [], [], [], []
        board = self.slo.snapshot()
        tenants = dict(board["tenants"])
        tenants["_total"] = board["total"]
        for tenant, horizons in sorted(tenants.items()):
            for label, window in sorted(horizons.items()):
                key = {"tenant": tenant, "window": label}
                burn.append((key, window["burn_rate"]))
                avail.append((key, window["availability"]))
                latency.append((key, window["latency"]))
                requests.append((key, window["requests"]))
                errors.append((key, window["errors"]))
        families.extend(
            [
                gauge_family(
                    "serve.slo_burn_rate",
                    "Error-budget burn rate over the rolling window "
                    "(1.0 = spending exactly the budget).",
                    burn,
                ),
                gauge_family(
                    "serve.slo_availability",
                    "Success fraction over the rolling window.",
                    avail,
                ),
                gauge_family(
                    "serve.slo_latency_seconds",
                    "The SLO latency quantile over the rolling window.",
                    latency,
                ),
                gauge_family(
                    "serve.window_requests",
                    "Requests observed in the rolling window.",
                    requests,
                ),
                gauge_family(
                    "serve.window_errors",
                    "Failed requests observed in the rolling window.",
                    errors,
                ),
                gauge_family(
                    "serve.flight_events",
                    "Flight-recorder ring occupancy.",
                    [
                        ({"state": "captured"}, self.flight.captured),
                        ({"state": "dropped"}, self.flight.dropped),
                    ],
                ),
            ]
        )
        return families

    def metrics_text(self) -> str:
        """The ``GET /metrics`` Prometheus-style exposition document."""
        return render_families(self.metrics_families())

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
        self.telemetry.close()

    def __repr__(self) -> str:
        return (
            f"QueryService(queries={len(self._queries)}, "
            f"dbs={len(self._dbs)}, {self.admission!r})"
        )


__all__ = [
    "ChaosSpec",
    "FLIGHT_TAIL",
    "QueryService",
    "STATS_SCHEMA_VERSION",
    "ServeResponse",
]
