"""Live service telemetry: JSONL event log + aggregated stats view.

The serve layer keeps all its numeric state in the session's shared
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges, latency
histograms with p50/p95/p99), so ``/stats`` is just a snapshot of that
registry plus the structural readings (breaker states, pool restarts,
queue depth) that are not plain numbers.

:class:`TelemetryLog` is the append-only half: one JSON object per line
per completed (or shed) request, flushed eagerly so a crashed server
still leaves a usable log — CI uploads this file as the smoke-test
artifact.

The log is concurrency-safe: ``emit`` serializes writers behind a lock
(asyncio callbacks, worker-supervision threads, and tests may all emit),
the file is opened with an explicit UTF-8 encoding, and the log is a
context manager so every shutdown path — including exceptions unwinding
through ``repro serve`` — closes the handle deterministically::

    with TelemetryLog(path) as log:
        log.emit({"event": "call", ...})
"""

from __future__ import annotations

import json
import threading
from typing import IO, Dict, Optional


class TelemetryLog:
    """An append-only JSONL request log; a no-op when ``path`` is None."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._handle: Optional[IO[str]] = None
        self._lock = threading.Lock()
        self.events = 0

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def emit(self, event: Dict[str, object]) -> None:
        """Write one event as a JSON line (flushed immediately).

        Safe to call from multiple threads: the count, the lazy open,
        and the write+flush happen under one lock, so concurrent events
        never interleave inside a line.
        """
        with self._lock:
            self.events += 1
            if self.path is None:
                return
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            json.dump(event, self._handle, sort_keys=True, default=repr)
            self._handle.write("\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        target = self.path if self.path is not None else "<disabled>"
        return f"TelemetryLog({target!r}, events={self.events})"


__all__ = ["TelemetryLog"]
