"""Live service telemetry: JSONL event log + aggregated stats view.

The serve layer keeps all its numeric state in the session's shared
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges, latency
histograms with p50/p95/p99), so ``/stats`` is just a snapshot of that
registry plus the structural readings (breaker states, pool restarts,
queue depth) that are not plain numbers.

:class:`TelemetryLog` is the append-only half: one JSON object per line
per completed (or shed) request, flushed eagerly so a crashed server
still leaves a usable log — CI uploads this file as the smoke-test
artifact.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Optional


class TelemetryLog:
    """An append-only JSONL request log; a no-op when ``path`` is None."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._handle: Optional[IO[str]] = None
        self.events = 0

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def emit(self, event: Dict[str, object]) -> None:
        """Write one event as a JSON line (flushed immediately)."""
        self.events += 1
        if self.path is None:
            return
        if self._handle is None:
            self._handle = open(self.path, "a")
        json.dump(event, self._handle, sort_keys=True, default=repr)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        target = self.path if self.path is not None else "<disabled>"
        return f"TelemetryLog({target!r}, events={self.events})"


__all__ = ["TelemetryLog"]
