"""Retry with jittered exponential backoff, and per-tenant breakers.

Evaluation is pure — the same query against the same database state
always yields the same relation — so re-running a request after a worker
crash or an injected fault is idempotent *by construction*.  That makes
a retry loop the cheapest robustness layer in the service: the only
questions are *how long to wait* between attempts and *when to stop
trusting the backend at all*.

* :class:`RetryPolicy` answers the first: capped exponential backoff
  with multiplicative jitter, fully deterministic per ``(policy seed,
  request seed)`` so chaos tests can assert the exact schedule.
* :class:`CircuitBreaker` answers the second: after ``threshold``
  *consecutive* backend failures for one tenant, the breaker opens and
  the tenant's requests bypass the worker pool for ``cooldown`` seconds,
  degrading to serial in-process evaluation (still correct, just not
  isolated).  After the cooldown one probe request is let back through;
  its outcome closes or re-opens the breaker.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic jittered exponential backoff.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(max_delay, base_delay * multiplier**(attempt-1))`` scaled by a
    seeded jitter factor in ``[1-jitter, 1+jitter]``.  Two requests with
    different ``request_seed`` get decorrelated schedules (no retry
    stampede after a shared fault), while the same request replays the
    same schedule every run.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def delays(self, request_seed: int = 0) -> Iterator[float]:
        """The backoff delays after attempts 1, 2, ... (never exhausts)."""
        rng = random.Random((self.seed << 32) ^ (request_seed & 0xFFFFFFFF))
        delay = self.base_delay
        while True:
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(self.max_delay, delay) * factor
            delay *= self.multiplier


class CircuitBreaker:
    """A per-tenant failure breaker with open/half-open/closed states.

    Counts *consecutive* failures; any success resets the count.  While
    open, :meth:`allow` answers ``False`` (callers degrade to the serial
    in-process path) until ``cooldown`` seconds have passed — then the
    breaker turns half-open and exactly one caller is admitted as a
    probe.  :meth:`record_success` on the probe closes the breaker,
    :meth:`record_failure` re-opens it for a fresh cooldown.
    """

    __slots__ = (
        "threshold",
        "cooldown",
        "_clock",
        "_state",
        "_failures",
        "_opened_at",
        "_probing",
        "trips",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """The current state, advancing open → half-open on its own."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """May this request use the real backend (the worker pool)?"""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker half-opens (0.0 otherwise).

        A pure reading for ``/stats`` — unlike :attr:`state` it never
        advances the breaker.
        """
        if self._state != OPEN:
            return 0.0
        remaining = self.cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def record_success(self) -> None:
        self._failures = 0
        self._probing = False
        self._state = CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        state = self._state
        if state == HALF_OPEN or (
            state == CLOSED and self._failures >= self.threshold
        ):
            self._state = OPEN
            self._opened_at = self._clock()
            self._probing = False
            self.trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._failures}/{self.threshold}, "
            f"trips={self.trips})"
        )


__all__ = ["CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN", "RetryPolicy"]
