"""A resilient multi-tenant query service over the bounded-variable engines.

The paper's central promise — PTIME data complexity for ``L^k`` queries
(Prop 3.1) — is an *amortization* argument: compile the small, fixed
query once, then answer it against large, changing data within a
polynomial budget.  This package is that argument turned into a server:

* :mod:`~repro.serve.service` — the :class:`QueryService` session layer
  (register databases, prepare queries once, evaluate many times) with
  retry/backoff, per-tenant circuit breakers, and a degradation ladder;
* :mod:`~repro.serve.admission` — bounded weighted-fair admission with
  deadline-aware load shedding (:class:`AdmissionController`,
  :class:`TenantPolicy`);
* :mod:`~repro.serve.retry` — deterministic backoff schedules and the
  breaker state machine (:class:`RetryPolicy`, :class:`CircuitBreaker`);
* :mod:`~repro.serve.workers` — the supervised process pool that
  survives worker crashes (:class:`WorkerPool`);
* :mod:`~repro.serve.http` — a stdlib-only HTTP front end
  (:class:`ServeHTTP`) behind ``repro serve``, including the
  ``GET /metrics`` exposition and ``GET /trace`` endpoints;
* :mod:`~repro.serve.telemetry` — the concurrency-safe JSONL request log.

The observability pipeline itself (rolling windows, SLO burn rates,
trace correlation, the flight recorder) lives in :mod:`repro.obs` and is
threaded through the service — see ``docs/observability.md``
("Operating the service") and ``docs/robustness.md`` ("Serving under
load") for the design tour.
"""

from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.http import ServeHTTP
from repro.serve.retry import CircuitBreaker, RetryPolicy
from repro.serve.service import (
    ChaosSpec,
    QueryService,
    STATS_SCHEMA_VERSION,
    ServeResponse,
)
from repro.serve.telemetry import TelemetryLog
from repro.serve.workers import WorkerCrashed, WorkerPool

__all__ = [
    "AdmissionController",
    "ChaosSpec",
    "CircuitBreaker",
    "QueryService",
    "RetryPolicy",
    "STATS_SCHEMA_VERSION",
    "ServeHTTP",
    "ServeResponse",
    "TelemetryLog",
    "TenantPolicy",
    "WorkerCrashed",
    "WorkerPool",
]
