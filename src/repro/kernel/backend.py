"""Table-backend selection for the bounded-variable engines.

A backend decides how the engines *represent* intermediate tables and
fixpoint state; it never changes what they compute.  Two implementations:

``sparse``
    The reference representation — :class:`repro.core.interp.VarTable`
    frozensets of row tuples and plain
    :class:`repro.database.relation.Relation` fixpoint state.

``packed``
    The :mod:`repro.kernel.packed` kernel — every table one ``n^k``-bit
    integer, every fixpoint iterate a :class:`PackedRelation`, so the
    boolean algebra that dominates FP/PFP iteration runs as single
    big-int operations.

Backends are resolved per evaluation by :func:`resolve_backend`:
``EvalOptions(backend=...)`` / CLI ``--backend`` name one explicitly,
``None`` defers to the ``REPRO_BENCH_BACKEND`` environment variable
(default ``sparse``) so a whole test lane or bench run can be flipped
without touching call sites.

The packed backend reports ``kernel.*`` metrics (tables built, mask
width, popcount distribution, codec cache reuse) into the evaluation's
:class:`~repro.obs.metrics.MetricsRegistry`.  They are deliberately
*not* part of :meth:`EvalStats.as_dict`: the stats counters stay
representation-independent, which is what lets the differential suites
assert sparse/packed counter equality.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence

from repro.core.interp import VarTable
from repro.database.domain import Domain, Value
from repro.database.relation import Relation
from repro.errors import EvaluationError, SchemaError
from repro.kernel.packed import (
    CACHE_STAT_KEYS,
    DomainCodec,
    PackedRelation,
    PackedTable,
)
from repro.logic.syntax import Const, Term, Var
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, TracerLike

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV = "REPRO_BENCH_BACKEND"

#: The reference representation.
DEFAULT_BACKEND = "sparse"

#: Refuse packed masks wider than this many bits (≈16 MiB of mask): a
#: query that needs them has left the regime where one dense bit-table
#: per subformula is sane, and the sparse backend handles it gracefully.
DEFAULT_MAX_BITS = 1 << 27

#: Shared codecs, keyed by (value-equal) domain, so selector-mask caches
#: survive across evaluations.  Bounded crudely — codecs are small, but
#: long property-test sessions create thousands of throwaway domains.
_CODECS: Dict[Domain, DomainCodec] = {}
_CODEC_CACHE_LIMIT = 256


def codec_for(domain: Domain, registry: Optional[MetricsRegistry] = None) -> DomainCodec:
    """The shared :class:`DomainCodec` for a domain (created on miss)."""
    codec = _CODECS.get(domain)
    if registry is not None:
        registry.counter(
            "kernel.codec_hits" if codec is not None else "kernel.codec_misses"
        ).inc()
    if codec is None:
        if len(_CODECS) >= _CODEC_CACHE_LIMIT:
            _CODECS.clear()
        codec = DomainCodec(domain)
        _CODECS[domain] = codec
    return codec


def _parse_terms(relation: Relation, terms: Sequence[Term]):
    """Shared atom-term analysis: variable positions, constant positions,
    sorted column names — the selection pattern of Lemma 3.6's proof."""
    if len(terms) != relation.arity:
        raise EvaluationError(
            f"atom has {len(terms)} arguments for a relation of arity "
            f"{relation.arity}"
        )
    var_positions: Dict[str, list] = {}
    const_positions = []
    for i, term in enumerate(terms):
        if isinstance(term, Var):
            var_positions.setdefault(term.name, []).append(i)
        elif isinstance(term, Const):
            const_positions.append((i, term.value))
        else:
            raise EvaluationError(f"unknown term {term!r}")
    return var_positions, const_positions, sorted(var_positions)


class SparseBackend:
    """The reference representation: ``VarTable`` + plain ``Relation``."""

    name = "sparse"

    def __init__(self, domain: Domain):
        self.domain = domain

    def table(self, variables: Sequence[str], rows: Iterable) -> VarTable:
        return VarTable(variables, rows)

    def tautology(self) -> VarTable:
        return VarTable.tautology()

    def contradiction(self) -> VarTable:
        return VarTable.contradiction()

    def full(self, variables: Sequence[str]) -> VarTable:
        return VarTable.full(variables, self.domain)

    def atom_table(self, relation: Relation, terms: Sequence[Term]) -> VarTable:
        from repro.core.fo_eval import atom_table

        return atom_table(relation, terms, self.domain)

    def empty_relation(self, arity: int) -> Relation:
        return Relation.empty(arity)

    def full_relation(self, arity: int) -> Relation:
        return Relation(arity, self.domain.tuples(arity))

    def observe(self, table) -> None:
        """No kernel metrics for the reference representation."""

    def __repr__(self) -> str:
        return f"SparseBackend(n={len(self.domain)})"


class PackedBackend:
    """The ``n^k``-bit kernel of :mod:`repro.kernel.packed`."""

    name = "packed"

    def __init__(
        self,
        domain: Domain,
        registry: Optional[MetricsRegistry] = None,
        max_bits: int = DEFAULT_MAX_BITS,
        tracer: TracerLike = NULL_TRACER,
    ):
        self.domain = domain
        self.max_bits = max_bits
        registry = registry if registry is not None else MetricsRegistry()
        self.codec = codec_for(domain, registry)
        self.tracer = tracer
        self._tables = registry.counter("kernel.tables")
        self._mask_bits = registry.gauge("kernel.mask_bits")
        self._popcounts = registry.histogram("kernel.popcount")
        # bounded-cache tallies live on the shared codec; this backend
        # publishes the deltas it witnesses as kernel.cache.* counters
        self._cache_counters = {
            name: registry.counter("kernel.cache." + name)
            for name in CACHE_STAT_KEYS
        }
        self._cache_seen = dict(self.codec.cache_stats)

    def _sync_cache_stats(self) -> None:
        stats = self.codec.cache_stats
        seen = self._cache_seen
        if stats["events"] == seen["events"]:
            return
        seen["events"] = stats["events"]
        for name, counter in self._cache_counters.items():
            delta = stats[name] - seen[name]
            if delta:
                counter.inc(delta)
                seen[name] = stats[name]

    def _guard_width(self, k: int) -> None:
        bits = self.codec.size(k)
        if bits > self.max_bits:
            raise EvaluationError(
                f"packed backend refuses a {k}-column table over "
                f"n={self.codec.n}: {bits} mask bits exceed the "
                f"{self.max_bits}-bit cap — use backend='sparse' for "
                f"this query"
            )

    def table(self, variables: Sequence[str], rows: Iterable) -> PackedTable:
        self._guard_width(len(set(variables)))
        return PackedTable.from_rows(
            self.codec, variables, rows, tracer=self.tracer
        )

    def tautology(self) -> PackedTable:
        return PackedTable.tautology(self.codec, tracer=self.tracer)

    def contradiction(self) -> PackedTable:
        return PackedTable.contradiction(self.codec, tracer=self.tracer)

    def full(self, variables: Sequence[str]) -> PackedTable:
        self._guard_width(len(set(variables)))
        return PackedTable.full(self.codec, variables, tracer=self.tracer)

    def empty_relation(self, arity: int) -> PackedRelation:
        return PackedRelation(arity, 0, self.codec, tracer=self.tracer)

    def full_relation(self, arity: int) -> PackedRelation:
        self._guard_width(arity)
        return PackedRelation(
            arity, self.codec.full_mask(arity), self.codec, tracer=self.tracer
        )

    def observe(self, table) -> None:
        self._tables.inc()
        if isinstance(table, PackedTable):
            self._mask_bits.set_max(self.codec.size(len(table.variables)))
            self._popcounts.observe(len(table))
        self._sync_cache_stats()

    # -- atoms ---------------------------------------------------------

    def atom_table(self, relation: Relation, terms: Sequence[Term]) -> PackedTable:
        """The table of ``R(t_1, ..., t_m)``.

        When the relation is itself packed over this codec (the fixpoint
        recursion variable on every round), the whole atom — constant
        selection, repeated-variable equality, projection to distinct
        variables, permutation to sorted columns — runs as mask kernels
        with no per-row Python work.
        """
        var_positions, const_positions, columns = _parse_terms(relation, terms)
        self._guard_width(len(columns))
        if isinstance(relation, PackedRelation) and relation.codec is self.codec:
            return self._atom_from_mask(
                relation, var_positions, const_positions, columns
            )
        return self._atom_from_rows(
            relation, var_positions, const_positions, columns
        )

    def _atom_from_rows(
        self, relation, var_positions, const_positions, columns
    ) -> PackedTable:
        # Encoding a sparse relation walks it row by row — the only
        # per-row loop left in the packed pipeline.  Base relations are
        # immutable and hit with the same term shape on every solve, so
        # cache the finished mask on the (shared) codec's bounded LRU.
        cache = self.codec.atom_masks
        key = (
            relation,
            tuple(const_positions),
            tuple((name, tuple(ps)) for name, ps in sorted(var_positions.items())),
        )
        mask = cache.get(key)
        if mask is None:
            encode = self.codec.encode_row
            mask = 0
            for tup in relation.tuples:
                if any(tup[i] != value for i, value in const_positions):
                    continue
                ok = True
                for positions in var_positions.values():
                    first = tup[positions[0]]
                    if any(tup[p] != first for p in positions[1:]):
                        ok = False
                        break
                if ok:
                    row = tuple(tup[var_positions[v][0]] for v in columns)
                    mask |= 1 << encode(row)
            cache.put(key, mask)
        return PackedTable(self.codec, tuple(columns), mask, self.tracer)

    def _atom_from_mask(
        self, relation, var_positions, const_positions, columns
    ) -> PackedTable:
        codec = self.codec
        m = relation.arity
        mask = relation.mask
        # positional column i of the relation is digit m-1-i
        for i, value in const_positions:
            try:
                v = self.domain.index_of(value)
            except SchemaError:
                return PackedTable(codec, tuple(columns), 0, self.tracer)
            mask = codec.select_value(mask, m, m - 1 - i, v)
        for positions in var_positions.values():
            first = positions[0]
            for p in positions[1:]:
                mask &= codec.eq_mask(m, m - 1 - first, m - 1 - p)
        keep = sorted(ps[0] for ps in var_positions.values())
        keep_set = set(keep)
        k = m
        for d in sorted((m - 1 - i for i in range(m) if i not in keep_set), reverse=True):
            mask = codec.project(mask, k, d, universal=False)
            k -= 1
        # remaining digits follow the kept positions' relative order
        names = sorted(var_positions, key=lambda v: var_positions[v][0])
        if names != columns:
            src_for = [0] * k
            for j, name in enumerate(columns):
                i = names.index(name)
                src_for[k - 1 - j] = k - 1 - i
            mask = codec.permute(mask, k, src_for)
        return PackedTable(codec, tuple(columns), mask, self.tracer)

    def __repr__(self) -> str:
        return f"PackedBackend(n={len(self.domain)})"


def resolve_backend(
    value,
    domain: Domain,
    registry: Optional[MetricsRegistry] = None,
    tracer: TracerLike = NULL_TRACER,
):
    """Normalize a backend selection for one evaluation.

    ``None`` consults ``REPRO_BENCH_BACKEND`` (default ``sparse``);
    ``"sparse"``/``"packed"`` build the named backend over ``domain``;
    an already-constructed backend object passes through unchanged.
    ``tracer`` reaches the packed kernel, which records ``kernel.join``
    / ``kernel.project`` / ``kernel.fixpoint_check`` spans when enabled.
    """
    if value is None:
        value = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if isinstance(value, str):
        name = value.strip().lower()
        if name == SparseBackend.name:
            return SparseBackend(domain)
        if name == PackedBackend.name:
            return PackedBackend(domain, registry=registry, tracer=tracer)
        raise EvaluationError(
            f"unknown table backend {value!r} (expected 'sparse' or 'packed')"
        )
    return value


__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "PackedBackend",
    "SparseBackend",
    "codec_for",
    "resolve_backend",
]
