"""Packed ``n^k``-bit relation kernel and table-backend selection.

See :mod:`repro.kernel.packed` for the bitmask representation and
:mod:`repro.kernel.backend` for how the engines choose between it and
the sparse reference tables.
"""

from repro.kernel.backend import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    PackedBackend,
    SparseBackend,
    codec_for,
    resolve_backend,
)
from repro.kernel.packed import DomainCodec, PackedRelation, PackedTable, popcount

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "DomainCodec",
    "PackedBackend",
    "PackedRelation",
    "PackedTable",
    "SparseBackend",
    "codec_for",
    "popcount",
    "resolve_backend",
]
