"""Packed relation kernel: a k-ary table as one ``n^k``-bit integer.

The paper's load-bearing observation (Prop 3.1) is that bounding the
number of variables bounds the arity of every intermediate relation:
each table is a subset of ``D^k`` and hence has at most ``n^k`` rows.
That same bound licenses a *packed* representation — enumerate ``D^k``
once and store a k-ary table as an ``n^k``-bit Python integer with bit
``i`` set iff the ``i``-th tuple is present.  Set algebra then collapses
to single big-int operations:

==============================  ====================================
union / intersect / difference  ``|`` / ``&`` / ``& ~``
complement                      ``^ full_mask``
emptiness / equality            ``== 0`` / integer ``==``
row count                       popcount
==============================  ====================================

Quantification and schema manipulation become *stride kernels* over
mixed-radix digits: a row ``(a_0, ..., a_{k-1})`` over the sorted
variables maps to index ``Σ_i index(a_i) · n^{k-1-i}`` (column 0 most
significant, matching :meth:`repro.database.domain.Domain.tuples`
lexicographic order), so the column at sorted position ``i`` is the
base-``n`` digit at weight position ``d = k-1-i``.  Inserting a digit
(cylindrification) is a stretch-and-replicate; removing one
(∃/∀-projection) is an OR/AND shift-fold followed by a compress;
equality selection and digit transposition are precomputed selector
masks.  All selector masks are cached per ``(k, digit)`` on the
:class:`DomainCodec`, which is itself shared per domain (see
:func:`repro.kernel.backend.codec_for`).

:class:`PackedTable` mirrors the full operation surface of
:class:`repro.core.interp.VarTable`; :class:`PackedRelation` is a
:class:`repro.database.relation.Relation` whose tuple set materializes
lazily from the mask, so fixpoint state flows through the engines as
masks end-to-end and convergence checks are integer comparisons.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.database.domain import Domain, Value
from repro.database.relation import Relation
from repro.errors import EvaluationError, SchemaError
from repro.obs.tracer import NULL_TRACER, TracerLike

Row = Tuple[Value, ...]

if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(mask: int) -> int:
        """Number of set bits — the packed row count."""
        return mask.bit_count()

else:  # pragma: no cover - exercised on the 3.9 CI lane

    def popcount(mask: int) -> int:
        """Number of set bits — the packed row count."""
        return bin(mask).count("1")


def _rep_factor(width: int, count: int) -> int:
    """``Σ_{h < count} 2^(h·width)`` — replicates a ``width``-bit block
    ``count`` times when used as a multiplier.

    Built by binary doubling (``O(log count)`` shift/ORs), *not* by the
    geometric-series division ``(2^(w·c) - 1) // (2^w - 1)``: CPython
    big-int division is quadratic, which turns multi-megabit selector
    builds into minutes."""
    if count <= 0:
        return 0
    rep = 1  # replicates 2^j copies after j doublings
    copies = 1
    result = 0
    placed = 0
    while count:
        if count & 1:
            result |= rep << (placed * width)
            placed += copies
        count >>= 1
        if count:
            rep |= rep << (copies * width)
            copies <<= 1
    return result


def _stretch(mask: int, count: int, width: int, stride: int) -> int:
    """Spread ``count`` adjacent ``width``-bit blocks to ``stride`` spacing.

    Recursive halving keeps this at ``O(count)`` big-int operations with
    logarithmic recursion depth — the work per level is proportional to
    the integer size, not to ``count · width``.
    """
    if count <= 1 or width == stride:
        return mask
    half = count // 2
    lo = mask & ((1 << (half * width)) - 1)
    hi = mask >> (half * width)
    return _stretch(lo, half, width, stride) | (
        _stretch(hi, count - half, width, stride) << (half * stride)
    )


def _compress(mask: int, count: int, width: int, stride: int) -> int:
    """Inverse of :func:`_stretch`: gather ``count`` blocks at ``stride``
    spacing into adjacency.  The caller must already have cleared every
    bit outside the low ``width`` bits of each block."""
    if count <= 1 or width == stride:
        return mask
    half = count // 2
    lo = mask & ((1 << (half * stride)) - 1)
    hi = mask >> (half * stride)
    return _compress(lo, half, width, stride) | (
        _compress(hi, count - half, width, stride) << (half * width)
    )


#: Per-codec cap on cached sparse-relation atom encodings.
ATOM_CACHE_LIMIT = 128

#: Per-table cap on cached alignment (cylindrification) masks.  A table
#: is only ever re-aligned against the join schemas it actually meets —
#: normally a handful — but adversarial property-test formulas can meet
#: one memoized atom under hundreds of schemas.
ALIGN_CACHE_LIMIT = 64


class BoundedMaskCache:
    """A tiny LRU of masks with aggregate hit/miss/eviction tallies.

    The tallies live on a shared ``stats`` dict (the codec's
    ``cache_stats``) under ``{prefix}_hits`` / ``{prefix}_misses`` /
    ``{prefix}_evictions``; :class:`~repro.kernel.backend.PackedBackend`
    syncs them into its registry as ``kernel.cache.*`` counters.
    """

    __slots__ = ("_entries", "_limit", "_stats", "_prefix")

    def __init__(self, limit: int, stats: Dict[str, int], prefix: str):
        self._entries: "OrderedDict[object, int]" = OrderedDict()
        self._limit = limit
        self._stats = stats
        self._prefix = prefix

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key) -> Optional[int]:
        stats = self._stats
        mask = self._entries.get(key)
        if mask is None:
            stats[self._prefix + "_misses"] += 1
            stats["events"] += 1
            return None
        self._entries.move_to_end(key)
        stats[self._prefix + "_hits"] += 1
        stats["events"] += 1
        return mask

    def put(self, key, mask: int) -> None:
        self._entries[key] = mask
        self._entries.move_to_end(key)
        while len(self._entries) > self._limit:
            self._entries.popitem(last=False)
            self._stats[self._prefix + "_evictions"] += 1
            self._stats["events"] += 1


#: The tally keys every codec's ``cache_stats`` carries.  ``events`` is
#: a change counter, not a published metric: backends compare it against
#: their last-seen value to skip the sync loop when nothing happened.
CACHE_STAT_KEYS = (
    "atom_hits",
    "atom_misses",
    "atom_evictions",
    "align_hits",
    "align_misses",
    "align_evictions",
)

_CACHE_STAT_FIELDS = CACHE_STAT_KEYS + ("events",)


class DomainCodec:
    """Mixed-radix row↔bit-index codec and mask kernels for one domain.

    One codec is shared per domain (all tables over that domain reuse its
    selector-mask caches); all kernels take the digit count ``k``
    explicitly so one codec serves every arity.
    """

    __slots__ = (
        "domain",
        "n",
        "_full",
        "_sel0",
        "_eq",
        "_rep",
        "_plans",
        "_diffs",
        "atom_masks",
        "cache_stats",
    )

    def __init__(self, domain: Domain):
        self.domain = domain
        self.n = len(domain)
        self._full: Dict[int, int] = {}
        self._sel0: Dict[Tuple[int, int], int] = {}
        self._eq: Dict[Tuple[int, int, int], int] = {}
        self._rep: Dict[int, int] = {}
        self._plans: Dict[Tuple[int, int, int], list] = {}
        self._diffs: Dict[Tuple[int, int, int], list] = {}
        # aggregate bounded-cache tallies for every table/atom cache that
        # hangs off this codec; backends publish deltas as kernel.cache.*
        self.cache_stats: Dict[str, int] = {k: 0 for k in _CACHE_STAT_FIELDS}
        # sparse-relation atom encodings (see PackedBackend._atom_from_rows):
        # keyed by (relation, term shape) so each base relation is walked
        # row-by-row once per codec rather than once per evaluation
        self.atom_masks = BoundedMaskCache(
            ATOM_CACHE_LIMIT, self.cache_stats, "atom"
        )

    # -- encoding ------------------------------------------------------

    def size(self, k: int) -> int:
        """``n^k`` — the number of bit positions of a ``k``-digit mask."""
        return self.n**k

    def full_mask(self, k: int) -> int:
        """The mask of ``D^k`` itself (``n^0 = 1`` even when ``n = 0``)."""
        mask = self._full.get(k)
        if mask is None:
            mask = (1 << self.n**k) - 1
            self._full[k] = mask
        return mask

    def encode_row(self, row: Sequence[Value]) -> int:
        """The mixed-radix index of a row (first column most significant).

        Raises :class:`~repro.errors.SchemaError` for values outside the
        domain — a packed mask has no bit for them.
        """
        index_of = self.domain.index_of
        n = self.n
        idx = 0
        for value in row:
            idx = idx * n + index_of(value)
        return idx

    def decode_index(self, idx: int, k: int) -> Row:
        """The row at a bit index (inverse of :meth:`encode_row`)."""
        n = self.n
        values = self.domain.values
        out: List[Value] = [None] * k
        for pos in range(k - 1, -1, -1):
            out[pos] = values[idx % n]
            idx //= n
        return tuple(out)

    def iter_rows(self, mask: int, k: int) -> Iterator[Row]:
        """Decode every set bit of ``mask`` into its row."""
        while mask:
            low = mask & -mask
            yield self.decode_index(low.bit_length() - 1, k)
            mask ^= low

    # -- selector masks (cached per (k, digit)) ------------------------

    def _rep_n(self, width: int) -> int:
        """Replication multiplier for ``n`` copies of a ``width``-bit block."""
        rep = self._rep.get(width)
        if rep is None:
            rep = _rep_factor(width, self.n)
            self._rep[width] = rep
        return rep

    def sel0(self, k: int, d: int) -> int:
        """Selector of every index whose digit ``d`` equals 0."""
        key = (k, d)
        mask = self._sel0.get(key)
        if mask is None:
            n = self.n
            if n == 0:
                mask = 0
            else:
                block = (1 << n**d) - 1
                mask = block * _rep_factor(n ** (d + 1), n ** (k - 1 - d))
            self._sel0[key] = mask
        return mask

    def sel(self, k: int, d: int, v: int) -> int:
        """Selector of every index whose digit ``d`` equals ``v``."""
        return self.sel0(k, d) << (v * self.n**d)

    def eq_mask(self, k: int, da: int, db: int) -> int:
        """Selector of every index whose digits ``da`` and ``db`` agree."""
        if da > db:
            da, db = db, da
        key = (k, da, db)
        mask = self._eq.get(key)
        if mask is None:
            if da == db:
                mask = self.full_mask(k)
            else:
                mask = 0
                for v in range(self.n):
                    mask |= self.sel(k, da, v) & self.sel(k, db, v)
            self._eq[key] = mask
        return mask

    # -- digit kernels -------------------------------------------------

    def _fold_plan(self, count: int, width: int, stride: int) -> list:
        """Rounds of pairwise block merges for compress/stretch.

        Each round halves the block count by moving every odd-indexed
        ``width``-bit block down next to its even neighbour — one AND,
        XOR, shift, OR on the whole integer per round, ``O(log count)``
        rounds total.  The round masks are cached per layout; building
        them costs ``O(count)`` once (the recursive :func:`_compress`
        costs that *per call*)."""
        key = (count, width, stride)
        plan = self._plans.get(key)
        if plan is None:
            plan = []
            c, w, s = count, width, stride
            while c > 1 and w != s:
                # blocks at positions s, 3s, 5s, ... — one geometric
                # replication, never a per-block Python loop (count can
                # be n^{k-1})
                odd = (((1 << w) - 1) << s) * _rep_factor(2 * s, c // 2)
                plan.append((odd, s - w))
                c = (c + 1) // 2
                w, s = 2 * w, 2 * s
            self._plans[key] = plan
        return plan

    def _compress_fast(self, mask: int, count: int, width: int, stride: int) -> int:
        for odd, shift in self._fold_plan(count, width, stride):
            moved = mask & odd
            mask = (mask ^ moved) | (moved >> shift)
        return mask

    def _stretch_fast(self, mask: int, count: int, width: int, stride: int) -> int:
        for odd, shift in reversed(self._fold_plan(count, width, stride)):
            moved = mask & (odd >> shift)
            mask = (mask ^ moved) | (moved << shift)
        return mask

    def expand(self, mask: int, k: int, d: int) -> int:
        """Insert a fresh, unconstrained digit at weight position ``d``
        (cylindrification): each index splits into ``n`` copies."""
        if mask == 0 or self.n == 0:
            return 0
        width = self.n**d
        stretched = self._stretch_fast(
            mask, self.n ** (k - d), width, width * self.n
        )
        return stretched * self._rep_n(width)

    def project(self, mask: int, k: int, d: int, universal: bool = False) -> int:
        """Remove digit ``d``: OR-fold (∃) or AND-fold (∀) its ``n`` values.

        Callers handle the empty-domain ∀ convention themselves; here an
        empty domain simply yields the empty mask.
        """
        n = self.n
        if n == 0:
            return 0
        width = n**d
        acc = mask
        if universal:
            for v in range(1, n):
                acc &= mask >> (v * width)
        else:
            for v in range(1, n):
                acc |= mask >> (v * width)
        acc &= self.sel0(k, d)
        return self._compress_fast(acc, n ** (k - 1 - d), width, width * n)

    def select_value(self, mask: int, k: int, d: int, v: int) -> int:
        """Keep indices whose digit ``d`` equals value index ``v``."""
        return mask & self.sel(k, d, v)

    def _diff_plan(self, k: int, da: int, db: int) -> list:
        """Cached ``(selector, shift)`` pairs for :meth:`swap`, one per
        digit difference ``t = digit(db) - digit(da) ≠ 0``.  Building is
        ``O(n^2)`` once per ``(k, da, db)``; each swap is then ``O(n)``."""
        key = (k, da, db)
        plan = self._diffs.get(key)
        if plan is None:
            n = self.n
            wa, wb = n**da, n**db
            plan = []
            for t in range(-(n - 1), n):
                if t == 0:
                    continue
                selector = 0
                for u in range(max(0, -t), min(n, n - t)):
                    selector |= self.sel(k, da, u) & self.sel(k, db, u + t)
                # swapping moves a piece by (v-u)·wa + (u-v)·wb = -t·(wb-wa)
                plan.append((selector, -t * (wb - wa)))
            self._diffs[key] = plan
        return plan

    def swap(self, mask: int, k: int, da: int, db: int) -> int:
        """Transpose two digits via the cached difference selectors."""
        if da == db or mask == 0:
            return mask
        if da > db:
            da, db = db, da
        out = mask & self.eq_mask(k, da, db)
        for selector, delta in self._diff_plan(k, da, db):
            piece = mask & selector
            if piece:
                out |= piece << delta if delta > 0 else piece >> -delta
        return out

    def permute(self, mask: int, k: int, src_for: Sequence[int]) -> int:
        """Rearrange digits: result digit ``d`` takes source digit
        ``src_for[d]``.  Decomposed into at most ``k-1`` transpositions."""
        cur = list(range(k))
        for d in range(k):
            want = src_for[d]
            if cur[d] == want:
                continue
            j = cur.index(want)
            mask = self.swap(mask, k, d, j)
            cur[d], cur[j] = cur[j], cur[d]
        return mask

    def __repr__(self) -> str:
        return f"DomainCodec(n={self.n})"


class PackedTable:
    """A :class:`~repro.core.interp.VarTable`-compatible table stored as
    one ``n^k``-bit mask over canonically sorted columns.

    The bare constructor is trusted (columns must already be sorted and
    the mask in range); :meth:`from_rows` is the validated public path.
    """

    __slots__ = (
        "_vars",
        "_mask",
        "_codec",
        "_row_cache",
        "_align_cache",
        "_tracer",
    )

    def __init__(
        self,
        codec: DomainCodec,
        variables: Tuple[str, ...],
        mask: int,
        tracer: TracerLike = NULL_TRACER,
    ):
        self._codec = codec
        self._vars = variables
        self._mask = mask
        self._tracer = tracer
        self._row_cache: Optional[FrozenSet[Row]] = None
        self._align_cache: Optional[BoundedMaskCache] = None

    # -- constructors --------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        codec: DomainCodec,
        variables: Sequence[str],
        rows: Iterable[Row],
        tracer: TracerLike = NULL_TRACER,
    ) -> "PackedTable":
        """Validated construction mirroring ``VarTable(variables, rows)``."""
        ordered = tuple(sorted(variables))
        if len(set(ordered)) != len(ordered):
            raise EvaluationError(f"duplicate table columns: {variables}")
        if tuple(variables) != ordered:
            pos = {v: i for i, v in enumerate(variables)}
            positions = [pos[v] for v in ordered]
            rows = (tuple(row[p] for p in positions) for row in rows)
        width = len(ordered)
        encode = codec.encode_row
        mask = 0
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise EvaluationError(
                    f"row {row!r} does not match columns {ordered}"
                )
            mask |= 1 << encode(row)
        return cls(codec, ordered, mask, tracer)

    @classmethod
    def tautology(
        cls, codec: DomainCodec, tracer: TracerLike = NULL_TRACER
    ) -> "PackedTable":
        """The always-true 0-variable table: one empty row (bit 0 set)."""
        return cls(codec, (), 1, tracer)

    @classmethod
    def contradiction(
        cls, codec: DomainCodec, tracer: TracerLike = NULL_TRACER
    ) -> "PackedTable":
        """The always-false 0-variable table: no rows."""
        return cls(codec, (), 0, tracer)

    @classmethod
    def full(
        cls,
        codec: DomainCodec,
        variables: Sequence[str],
        tracer: TracerLike = NULL_TRACER,
    ) -> "PackedTable":
        """``D^{variables}`` — the full mask."""
        ordered = tuple(sorted(variables))
        if len(set(ordered)) != len(ordered):
            raise EvaluationError(f"duplicate table columns: {variables}")
        return cls(codec, ordered, codec.full_mask(len(ordered)), tracer)

    # -- accessors -----------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._vars

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def codec(self) -> DomainCodec:
        return self._codec

    @property
    def rows(self) -> FrozenSet[Row]:
        """The decoded row set (materialized once, then cached)."""
        cached = self._row_cache
        if cached is None:
            cached = frozenset(
                self._codec.iter_rows(self._mask, len(self._vars))
            )
            self._row_cache = cached
        return cached

    def assignments(self) -> Iterator[Dict[str, Value]]:
        for row in self.rows:
            yield dict(zip(self._vars, row))

    def contains(self, assignment: Mapping[str, Value]) -> bool:
        try:
            row = tuple(assignment[v] for v in self._vars)
        except KeyError as missing:
            raise EvaluationError(
                f"assignment missing variable {missing}"
            ) from None
        try:
            idx = self._codec.encode_row(row)
        except SchemaError:
            return False
        return bool((self._mask >> idx) & 1)

    def is_empty(self) -> bool:
        return self._mask == 0

    # -- alignment helpers ---------------------------------------------

    def _coerced(self, other) -> "PackedTable":
        """``other`` as a packed table over this codec (same-codec tables
        pass through; anything table-like is re-encoded row by row)."""
        if isinstance(other, PackedTable) and other._codec is self._codec:
            return other
        return PackedTable.from_rows(
            self._codec, other.variables, other.rows, tracer=self._tracer
        )

    def _aligned(self, target: Tuple[str, ...]) -> int:
        """The mask cylindrified to a sorted superset schema.

        Cached per target: a memoized table (an atom, say) is re-joined
        on every fixpoint round against the same union schema, and the
        expansion is the expensive half of a packed join."""
        if target == self._vars:
            return self._mask
        codec = self._codec
        cache = self._align_cache
        if cache is None:
            cache = self._align_cache = BoundedMaskCache(
                ALIGN_CACHE_LIMIT, codec.cache_stats, "align"
            )
        mask = cache.get(target)
        if mask is not None:
            return mask
        mask = self._mask
        cur = list(self._vars)
        have = set(cur)
        for var in target:
            if var not in have:
                pos = bisect_left(cur, var)
                mask = codec.expand(mask, len(cur), len(cur) - pos)
                cur.insert(pos, var)
                have.add(var)
        cache.put(target, mask)
        return mask

    # -- relational operations -----------------------------------------

    def join(self, other) -> "PackedTable":
        """Natural join: cylindrify both to the union schema, then AND."""
        tracer = self._tracer
        if not tracer.enabled:
            return self._join(other)
        with tracer.span(
            "kernel.join", left=len(self._vars)
        ) as span:
            result = self._join(other)
            span.set(vars=len(result._vars), rows=len(result))
        return result

    def _join(self, other) -> "PackedTable":
        other = self._coerced(other)
        if other._vars == self._vars:
            return PackedTable(
                self._codec, self._vars, self._mask & other._mask, self._tracer
            )
        target = tuple(sorted(set(self._vars) | set(other._vars)))
        return PackedTable(
            self._codec,
            target,
            self._aligned(target) & other._aligned(target),
            self._tracer,
        )

    def cylindrify(self, variables: Iterable[str], domain: Optional[Domain] = None) -> "PackedTable":
        """Extend with the given (new) variables, free over the domain.

        ``domain`` is accepted for :class:`VarTable` signature parity; the
        codec already fixes it.
        """
        target = tuple(sorted(set(variables) | set(self._vars)))
        if target == self._vars:
            return self
        return PackedTable(
            self._codec, target, self._aligned(target), self._tracer
        )

    def union(self, other, domain: Optional[Domain] = None) -> "PackedTable":
        other = self._coerced(other)
        if other._vars == self._vars:
            return PackedTable(
                self._codec, self._vars, self._mask | other._mask, self._tracer
            )
        target = tuple(sorted(set(self._vars) | set(other._vars)))
        return PackedTable(
            self._codec,
            target,
            self._aligned(target) | other._aligned(target),
            self._tracer,
        )

    def intersect(self, other, domain: Optional[Domain] = None) -> "PackedTable":
        return self.join(other)

    def complement(self, domain: Optional[Domain] = None) -> "PackedTable":
        full = self._codec.full_mask(len(self._vars))
        return PackedTable(
            self._codec, self._vars, self._mask ^ full, self._tracer
        )

    def project_out(self, variable: str) -> "PackedTable":
        """Existential quantification: OR-fold one digit away."""
        if variable not in self._vars:
            return self
        tracer = self._tracer
        if not tracer.enabled:
            return self._project_out(variable)
        with tracer.span(
            "kernel.project", var=variable, universal=False
        ) as span:
            result = self._project_out(variable)
            span.set(rows=len(result))
        return result

    def _project_out(self, variable: str) -> "PackedTable":
        k = len(self._vars)
        i = self._vars.index(variable)
        mask = self._codec.project(self._mask, k, k - 1 - i, universal=False)
        remaining = self._vars[:i] + self._vars[i + 1 :]
        return PackedTable(self._codec, remaining, mask, self._tracer)

    def forall_out(self, variable: str, domain: Optional[Domain] = None) -> "PackedTable":
        """Universal quantification: AND-fold one digit away."""
        if variable not in self._vars:
            return self
        tracer = self._tracer
        if not tracer.enabled:
            return self._forall_out(variable)
        with tracer.span(
            "kernel.project", var=variable, universal=True
        ) as span:
            result = self._forall_out(variable)
            span.set(rows=len(result))
        return result

    def _forall_out(self, variable: str) -> "PackedTable":
        k = len(self._vars)
        i = self._vars.index(variable)
        remaining = self._vars[:i] + self._vars[i + 1 :]
        if self._codec.n == 0:
            # vacuously true over an empty domain; with other variables
            # remaining there are no assignments at all
            return PackedTable(
                self._codec, remaining, 0 if remaining else 1, self._tracer
            )
        mask = self._codec.project(self._mask, k, k - 1 - i, universal=True)
        return PackedTable(self._codec, remaining, mask, self._tracer)

    def select_eq(self, var_a: str, var_b: str) -> "PackedTable":
        """Rows where two columns agree (for repeated variables)."""
        if var_a not in self._vars or var_b not in self._vars:
            raise EvaluationError(
                f"select_eq: {var_a!r}/{var_b!r} not in {self._vars}"
            )
        k = len(self._vars)
        ia, ib = self._vars.index(var_a), self._vars.index(var_b)
        if ia == ib:
            return self
        eq = self._codec.eq_mask(k, k - 1 - ia, k - 1 - ib)
        return PackedTable(self._codec, self._vars, self._mask & eq, self._tracer)

    def rename(self, mapping: Mapping[str, str]) -> "PackedTable":
        """Rename columns; digits are permuted back to sorted order."""
        new_vars = tuple(mapping.get(v, v) for v in self._vars)
        if len(set(new_vars)) != len(new_vars):
            raise EvaluationError(
                f"rename would merge columns: {self._vars} via {dict(mapping)}"
            )
        if new_vars == self._vars:
            return self
        k = len(new_vars)
        order = sorted(range(k), key=new_vars.__getitem__)
        target_vars = tuple(new_vars[i] for i in order)
        src_for = [0] * k
        for j, i in enumerate(order):
            src_for[k - 1 - j] = k - 1 - i
        mask = self._codec.permute(self._mask, k, src_for)
        return PackedTable(self._codec, target_vars, mask, self._tracer)

    def to_relation(self, output_vars: Sequence[str]) -> Relation:
        """Read the table out as a (packed) relation in the given order."""
        if set(output_vars) != set(self._vars) or len(output_vars) != len(
            self._vars
        ):
            raise EvaluationError(
                f"output variables {tuple(output_vars)} must be a permutation "
                f"of table columns {self._vars}"
            )
        k = len(self._vars)
        pos = {v: i for i, v in enumerate(self._vars)}
        src_for = [0] * k
        for j, v in enumerate(output_vars):
            src_for[k - 1 - j] = k - 1 - pos[v]
        mask = self._mask
        if src_for != list(range(k)):
            mask = self._codec.permute(mask, k, src_for)
        return PackedRelation(k, mask, self._codec, tracer=self._tracer)

    # -- dunder --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedTable):
            if other._codec is self._codec:
                return self._vars == other._vars and self._mask == other._mask
            return self._vars == other._vars and self.rows == other.rows
        variables = getattr(other, "variables", None)
        rows = getattr(other, "rows", None)
        if variables is not None and rows is not None:
            return self._vars == tuple(variables) and self.rows == rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._vars, self.rows))

    def __len__(self) -> int:
        return popcount(self._mask)

    def __repr__(self) -> str:
        return f"PackedTable(vars={self._vars}, rows={len(self)})"


class PackedRelation(Relation):
    """A :class:`Relation` backed by a packed mask.

    Tuples materialize lazily (and are cached) the first time something
    actually iterates or hashes the relation; until then every hot
    operation the fixpoint engines perform — union, difference,
    subset/equality tests, length, membership — runs on the mask.
    Cross-representation equality with a plain :class:`Relation` holds
    (and hashing stays consistent with it); for hot identity checks the
    engines use :meth:`state_key`, which never materializes.
    """

    __slots__ = ("_mask", "_codec", "_materialized", "_tracer")

    def __init__(
        self,
        arity: int,
        mask: int,
        codec: DomainCodec,
        tracer: TracerLike = NULL_TRACER,
    ):
        if arity < 0:
            raise SchemaError(f"arity must be non-negative, got {arity}")
        self._arity = arity
        self._mask = mask
        self._codec = codec
        self._tracer = tracer
        self._materialized: Optional[FrozenSet[Row]] = None

    @property
    def _tuples(self) -> FrozenSet[Row]:  # shadows the Relation slot
        frozen = self._materialized
        if frozen is None:
            frozen = frozenset(self._codec.iter_rows(self._mask, self._arity))
            self._materialized = frozen
        return frozen

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def codec(self) -> DomainCodec:
        return self._codec

    def state_key(self):
        """A cheap hashable identity: ``O(1)``-ish, no tuple decoding."""
        return ("packed", self._arity, self._mask, self._codec.domain)

    def _same_kind(self, other) -> bool:
        return (
            isinstance(other, PackedRelation) and other._codec is self._codec
        )

    def union(self, other: Relation) -> Relation:
        if self._same_kind(other):
            self._check_same_arity(other, "union")
            return PackedRelation(
                self._arity, self._mask | other._mask, self._codec, self._tracer
            )
        return super().union(other)

    def intersection(self, other: Relation) -> Relation:
        if self._same_kind(other):
            self._check_same_arity(other, "intersection")
            return PackedRelation(
                self._arity, self._mask & other._mask, self._codec, self._tracer
            )
        return super().intersection(other)

    def difference(self, other: Relation) -> Relation:
        if self._same_kind(other):
            self._check_same_arity(other, "difference")
            return PackedRelation(
                self._arity, self._mask & ~other._mask, self._codec, self._tracer
            )
        return super().difference(other)

    def issubset(self, other: Relation) -> bool:
        if self._same_kind(other):
            self._check_same_arity(other, "issubset")
            tracer = self._tracer
            if tracer.enabled:
                with tracer.span("kernel.fixpoint_check", op="issubset") as span:
                    result = self._mask & ~other._mask == 0
                    span.set(holds=result)
                return result
            return self._mask & ~other._mask == 0
        return super().issubset(other)

    def __contains__(self, item: object) -> bool:
        if self._materialized is not None:
            return item in self._materialized
        if not isinstance(item, tuple) or len(item) != self._arity:
            return False
        try:
            idx = self._codec.encode_row(item)
        except (SchemaError, TypeError):
            return False
        return bool((self._mask >> idx) & 1)

    def __len__(self) -> int:
        return popcount(self._mask)

    def __bool__(self) -> bool:
        return self._mask != 0

    def __eq__(self, other: object) -> bool:
        if self._same_kind(other):
            tracer = self._tracer
            if tracer.enabled:
                # the convergence test of every packed fixpoint round
                with tracer.span("kernel.fixpoint_check", op="eq") as span:
                    result = (
                        self._arity == other._arity
                        and self._mask == other._mask
                    )
                    span.set(holds=result)
                return result
            return self._arity == other._arity and self._mask == other._mask
        return super().__eq__(other)

    # defining __eq__ would otherwise reset __hash__ to None; keep the
    # tuple-set hash so equal sparse and packed relations hash alike
    __hash__ = Relation.__hash__

    def __repr__(self) -> str:
        return (
            f"PackedRelation(arity={self._arity}, rows={len(self)}, "
            f"bits={self._codec.size(self._arity)})"
        )


__all__ = [
    "ALIGN_CACHE_LIMIT",
    "ATOM_CACHE_LIMIT",
    "BoundedMaskCache",
    "CACHE_STAT_KEYS",
    "DomainCodec",
    "PackedRelation",
    "PackedTable",
    "popcount",
]
