"""Embedding the µ-calculus into FP² (Section 1).

"The specification language Lµ ... can be shown to be a fragment of
FP²."  The embedding is the classical two-variable translation: a state
formula is translated at a *slot* (individual variable ``x`` or ``y``),
modalities flip the slot through the edge relation, and fixpoints become
unary lfp/gfp operators::

    T_x(◇φ)   = ∃y (E(x, y) ∧ T_y(φ))
    T_x(□φ)   = ∀y (¬E(x, y) ∨ T_y(φ))
    T_x(µX.φ) = [lfp X(x). T_x(φ)](x)

Only two individual variables ever occur, so checking an Lµ property is
evaluating an FP² query against the program database — which is how the
NP∩co-NP bound of Theorem 3.5 transfers to µ-calculus model checking.
"""

from __future__ import annotations

from repro.errors import SyntaxError_
from repro.core.engine import Query
from repro.logic.builders import and_, atom, exists, forall, gfp, lfp, not_, or_
from repro.logic.syntax import Formula
from repro.mucalculus.syntax import (
    Box,
    Diamond,
    Mu,
    MuAnd,
    MuFormula,
    MuOr,
    Nu,
    Prop,
    PropNeg,
    RecVar,
    check_closed,
)

_SLOTS = ("x", "y")


def _rec_name(var: str) -> str:
    """Recursion variables get a prefix so they cannot clash with
    proposition relation names in the database schema."""
    return f"_mu_{var}"


def translate(formula: MuFormula, slot: str = "x", edge_name: str = "E") -> Formula:
    """Translate a µ-calculus formula at the given slot variable."""
    if slot not in _SLOTS:
        raise SyntaxError_(f"slot must be one of {_SLOTS}, got {slot!r}")
    other = "y" if slot == "x" else "x"
    if isinstance(formula, Prop):
        return atom(formula.name, slot)
    if isinstance(formula, PropNeg):
        return not_(atom(formula.name, slot))
    if isinstance(formula, RecVar):
        return atom(_rec_name(formula.name), slot)
    if isinstance(formula, MuAnd):
        if not formula.subs:
            from repro.logic.builders import true_

            return true_()
        return and_(*(translate(s, slot, edge_name) for s in formula.subs))
    if isinstance(formula, MuOr):
        if not formula.subs:
            from repro.logic.builders import false_

            return false_()
        return or_(*(translate(s, slot, edge_name) for s in formula.subs))
    if isinstance(formula, Diamond):
        return exists(
            other,
            and_(atom(edge_name, slot, other), translate(formula.sub, other, edge_name)),
        )
    if isinstance(formula, Box):
        return forall(
            other,
            or_(
                not_(atom(edge_name, slot, other)),
                translate(formula.sub, other, edge_name),
            ),
        )
    if isinstance(formula, Mu):
        body = translate(formula.sub, "x", edge_name)
        return lfp(_rec_name(formula.var), ["x"], body, [slot])
    if isinstance(formula, Nu):
        body = translate(formula.sub, "x", edge_name)
        return gfp(_rec_name(formula.var), ["x"], body, [slot])
    raise SyntaxError_(f"unknown µ-calculus node {formula!r}")


def mu_to_fp_query(formula: MuFormula, edge_name: str = "E") -> Query:
    """The FP² query whose answer is the formula's denotation.

    Evaluate it against ``structure.to_database()``; the answer relation
    over output variable ``x`` is exactly
    :func:`repro.mucalculus.model_check.model_check`'s state set.
    """
    check_closed(formula)
    return Query(
        translate(formula, "x", edge_name),
        output_vars=("x",),
        name="mu-to-fp2",
    )
