"""Abstract syntax of the propositional µ-calculus (Kozen's Lµ).

Formulas are in positive normal form — negation applies to propositions
only — which guarantees every recursion variable occurs positively, the
well-formedness condition the fixpoint semantics needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

from repro.errors import SyntaxError_


class MuFormula:
    """Base class for µ-calculus formula nodes."""

    def children(self) -> Tuple["MuFormula", ...]:
        return ()

    def walk(self) -> Iterator["MuFormula"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def __and__(self, other: "MuFormula") -> "MuFormula":
        return MuAnd((self, other))

    def __or__(self, other: "MuFormula") -> "MuFormula":
        return MuOr((self, other))


@dataclass(frozen=True)
class Prop(MuFormula):
    """An atomic proposition ``p``."""

    name: str


@dataclass(frozen=True)
class PropNeg(MuFormula):
    """A negated proposition ``¬p`` (negation normal form)."""

    name: str


@dataclass(frozen=True)
class RecVar(MuFormula):
    """A recursion variable bound by an enclosing µ or ν."""

    name: str


@dataclass(frozen=True)
class MuAnd(MuFormula):
    subs: Tuple[MuFormula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))

    def children(self) -> Tuple[MuFormula, ...]:
        return self.subs


@dataclass(frozen=True)
class MuOr(MuFormula):
    subs: Tuple[MuFormula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))

    def children(self) -> Tuple[MuFormula, ...]:
        return self.subs


@dataclass(frozen=True)
class Diamond(MuFormula):
    """``◇φ`` — some successor satisfies φ (EX in CTL terms)."""

    sub: MuFormula

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class Box(MuFormula):
    """``□φ`` — every successor satisfies φ (AX in CTL terms)."""

    sub: MuFormula

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class Mu(MuFormula):
    """``µX.φ`` — least fixpoint."""

    var: str
    sub: MuFormula

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class Nu(MuFormula):
    """``νX.φ`` — greatest fixpoint."""

    var: str
    sub: MuFormula

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)


def free_recursion_variables(formula: MuFormula) -> FrozenSet[str]:
    """Recursion variables not bound within ``formula``."""
    if isinstance(formula, RecVar):
        return frozenset({formula.name})
    if isinstance(formula, (Mu, Nu)):
        return free_recursion_variables(formula.sub) - {formula.var}
    out: FrozenSet[str] = frozenset()
    for child in formula.children():
        out |= free_recursion_variables(child)
    return out


def check_closed(formula: MuFormula) -> None:
    """Raise unless every recursion variable is bound."""
    free = free_recursion_variables(formula)
    if free:
        raise SyntaxError_(
            f"µ-calculus formula has unbound recursion variables "
            f"{sorted(free)}"
        )


def propositions_used(formula: MuFormula) -> FrozenSet[str]:
    """All atomic proposition names occurring in ``formula``."""
    names = set()
    for node in formula.walk():
        if isinstance(node, (Prop, PropNeg)):
            names.add(node.name)
    return frozenset(names)


def mu_alternation_depth(formula: MuFormula) -> int:
    """Dependent µ/ν alternation depth (the [EL86] complexity parameter)."""
    if isinstance(formula, (Mu, Nu)):
        opposite = Nu if isinstance(formula, Mu) else Mu
        best = max(1, mu_alternation_depth(formula.sub))
        for node in formula.sub.walk():
            if isinstance(node, opposite) and formula.var in (
                free_recursion_variables(node)
            ):
                best = max(best, 1 + mu_alternation_depth(node))
        return best
    return max(
        (mu_alternation_depth(c) for c in formula.children()), default=0
    )
