"""A small concrete syntax for µ-calculus formulas.

Grammar (loosest first; fixpoints take maximal scope)::

    formula := ('mu' | 'nu') NAME '.' formula | or
    or      := and ('|' and)*
    and     := unary ('&' unary)*
    unary   := '~' NAME            -- negated proposition (PNF)
             | '<>' unary | '[]' unary
             | '(' formula ')'
             | NAME                -- proposition or recursion variable

A bare NAME parses as a recursion variable when a ``mu``/``nu`` binder
for it is in scope, and as a proposition otherwise.

>>> from repro.mucalculus.parser import parse_mu
>>> parse_mu("mu X. p | <> X").size()
5
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Set

from repro.errors import SyntaxError_
from repro.mucalculus.syntax import (
    Box,
    Diamond,
    Mu,
    MuAnd,
    MuFormula,
    MuOr,
    Nu,
    Prop,
    PropNeg,
    RecVar,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><>|\[\]|[~&|().])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"mu", "nu"}


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SyntaxError_(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(_Token(match.lastgroup, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def parse_mu(text: str) -> MuFormula:
    """Parse the concrete µ-calculus syntax."""
    parser = _MuParser(_tokenize(text))
    formula = parser.formula(set())
    parser.expect_eof()
    return formula


class _MuParser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text == op

    def _expect_op(self, op: str) -> None:
        if not self._at_op(op):
            token = self._peek()
            raise SyntaxError_(
                f"expected {op!r} at position {token.pos}, found {token.text!r}"
            )
        self._advance()

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "eof":
            raise SyntaxError_(
                f"trailing input at position {token.pos}: {token.text!r}"
            )

    def formula(self, bound: Set[str]) -> MuFormula:
        token = self._peek()
        if token.kind == "name" and token.text in _KEYWORDS:
            keyword = self._advance().text
            var_token = self._peek()
            if var_token.kind != "name" or var_token.text in _KEYWORDS:
                raise SyntaxError_(
                    f"expected a recursion variable at position {var_token.pos}"
                )
            var = self._advance().text
            self._expect_op(".")
            body = self.formula(bound | {var})
            return Mu(var, body) if keyword == "mu" else Nu(var, body)
        return self._or(bound)

    def _or(self, bound: Set[str]) -> MuFormula:
        parts = [self._and(bound)]
        while self._at_op("|"):
            self._advance()
            parts.append(self._and(bound))
        return parts[0] if len(parts) == 1 else MuOr(tuple(parts))

    def _and(self, bound: Set[str]) -> MuFormula:
        parts = [self._unary(bound)]
        while self._at_op("&"):
            self._advance()
            parts.append(self._unary(bound))
        return parts[0] if len(parts) == 1 else MuAnd(tuple(parts))

    def _unary(self, bound: Set[str]) -> MuFormula:
        token = self._peek()
        if self._at_op("~"):
            self._advance()
            name_token = self._peek()
            if name_token.kind != "name" or name_token.text in _KEYWORDS:
                raise SyntaxError_(
                    f"'~' applies to a proposition name "
                    f"(position {name_token.pos}); formulas are in positive "
                    f"normal form"
                )
            name = self._advance().text
            if name in bound:
                raise SyntaxError_(
                    f"recursion variable {name!r} cannot be negated "
                    f"(positivity)"
                )
            return PropNeg(name)
        if self._at_op("<>"):
            self._advance()
            return Diamond(self._unary(bound))
        if self._at_op("[]"):
            self._advance()
            return Box(self._unary(bound))
        if self._at_op("("):
            self._advance()
            inner = self.formula(bound)
            self._expect_op(")")
            return inner
        if token.kind == "name" and token.text in _KEYWORDS:
            return self.formula(bound)
        if token.kind == "name":
            name = self._advance().text
            if name in bound:
                return RecVar(name)
            return Prop(name)
        raise SyntaxError_(
            f"expected a formula at position {token.pos}, found {token.text!r}"
        )
