"""Kripke structures and their database encoding.

"A finite-state program can be viewed as a relational database consisting
of unary and binary relations" (Section 1): states form the domain, the
transition relation is a binary relation ``E``, and each atomic
proposition is a unary relation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import SchemaError


@dataclass(frozen=True)
class KripkeStructure:
    """A finite transition system with propositional labels."""

    num_states: int
    transitions: FrozenSet[Tuple[int, int]]
    labels: Tuple[Tuple[str, FrozenSet[int]], ...]   # proposition → states

    def __post_init__(self) -> None:
        for u, v in self.transitions:
            if not (0 <= u < self.num_states and 0 <= v < self.num_states):
                raise SchemaError(f"transition {(u, v)} out of range")
        seen = set()
        for name, states in self.labels:
            if name in seen:
                raise SchemaError(f"duplicate proposition {name!r}")
            seen.add(name)
            for s in states:
                if not 0 <= s < self.num_states:
                    raise SchemaError(f"labelled state {s} out of range")

    @classmethod
    def build(
        cls,
        num_states: int,
        transitions: Iterable[Tuple[int, int]],
        labels: Mapping[str, Iterable[int]],
    ) -> "KripkeStructure":
        return cls(
            num_states,
            frozenset(tuple(t) for t in transitions),
            tuple(
                sorted(
                    (name, frozenset(states)) for name, states in labels.items()
                )
            ),
        )

    @classmethod
    def random(
        cls,
        num_states: int,
        edge_probability: float,
        propositions: Iterable[str],
        label_density: float = 0.5,
        seed: int = 0,
        total: bool = True,
    ) -> "KripkeStructure":
        """A seeded random structure; ``total`` adds a self-loop to any
        deadlock state (the usual model-checking convention)."""
        rng = random.Random(seed)
        transitions = {
            (u, v)
            for u in range(num_states)
            for v in range(num_states)
            if rng.random() < edge_probability
        }
        if total:
            with_successor = {u for u, _ in transitions}
            for u in range(num_states):
                if u not in with_successor:
                    transitions.add((u, u))
        labels = {
            name: [
                s for s in range(num_states) if rng.random() < label_density
            ]
            for name in propositions
        }
        return cls.build(num_states, transitions, labels)

    def successors(self, state: int) -> FrozenSet[int]:
        return frozenset(v for u, v in self.transitions if u == state)

    def label_map(self) -> Dict[str, FrozenSet[int]]:
        return dict(self.labels)

    def proposition_holds(self, name: str, state: int) -> bool:
        for label, states in self.labels:
            if label == name:
                return state in states
        return False

    def to_database(self, edge_name: str = "E") -> Database:
        """The paper's encoding: states → domain, E binary, labels unary."""
        relations: Dict[str, Relation] = {
            edge_name: Relation(2, self.transitions)
        }
        for name, states in self.labels:
            if name == edge_name:
                raise SchemaError(
                    f"proposition {name!r} clashes with the edge relation"
                )
            relations[name] = Relation(1, [(s,) for s in states])
        return Database(Domain.range(self.num_states), relations)
