"""The propositional µ-calculus as a fragment of FP² (Section 1).

The paper's application: a finite-state program is a relational database
of unary and binary relations (a Kripke structure); verifying a
µ-calculus property is query evaluation; and since the µ-calculus
embeds into FP², the combined-complexity bound of Theorem 3.5 (NP∩co-NP)
transfers to µ-calculus model checking — matching [EJS93] by a different,
direct proof.

* :mod:`~repro.mucalculus.syntax` — formulas (literals, ∧/∨, ◇/□, µ/ν);
* :mod:`~repro.mucalculus.kripke` — Kripke structures ↔ databases;
* :mod:`~repro.mucalculus.parser` — a small concrete syntax;
* :mod:`~repro.mucalculus.model_check` — a direct fixpoint model checker;
* :mod:`~repro.mucalculus.to_fp` — the embedding into FP², so the same
  property can be checked through the bounded-variable query engine.
"""

from repro.mucalculus.syntax import (
    Box,
    Diamond,
    MuAnd,
    MuFormula,
    MuOr,
    Mu,
    Nu,
    Prop,
    PropNeg,
    RecVar,
)
from repro.mucalculus.kripke import KripkeStructure
from repro.mucalculus.parser import parse_mu
from repro.mucalculus.model_check import model_check
from repro.mucalculus.to_fp import mu_to_fp_query

__all__ = [
    "MuFormula",
    "Prop",
    "PropNeg",
    "RecVar",
    "MuAnd",
    "MuOr",
    "Diamond",
    "Box",
    "Mu",
    "Nu",
    "KripkeStructure",
    "parse_mu",
    "model_check",
    "mu_to_fp_query",
]
