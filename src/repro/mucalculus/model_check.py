"""Direct fixpoint model checking for the µ-calculus.

The textbook semantics: ``‖φ‖`` is a set of states, fixpoints iterate
over the (finite) powerset lattice.  This checker is the reference
implementation against which the FP² route
(:mod:`repro.mucalculus.to_fp` + the bounded-variable query engine) is
property-tested — the agreement *is* the paper's Section 1 claim made
executable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.errors import EvaluationError
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.provenance import NULL_STAGE_LOG, StageLogLike
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.mucalculus.kripke import KripkeStructure
from repro.mucalculus.syntax import (
    Box,
    Diamond,
    Mu,
    MuAnd,
    MuFormula,
    MuOr,
    Nu,
    Prop,
    PropNeg,
    RecVar,
    check_closed,
)

StateSet = FrozenSet[int]


def model_check(
    structure: KripkeStructure,
    formula: MuFormula,
    environment: Optional[Dict[str, StateSet]] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> StateSet:
    """The denotation ``‖formula‖`` ⊆ states of ``structure``.

    With tracing on, every µ/ν subformula shows up as a ``mu.fixpoint``
    span annotated with its recursion variable, iteration count, and
    final denotation size.  With a guard, every Kleene iteration of every
    fixpoint is a charged checkpoint.  ``observer`` records the Kleene
    stage sets of every µ/ν solve (plain frozensets of states, so the
    :class:`~repro.obs.provenance.SolveRecord` helpers take a state
    where the query engines take a tuple).
    """
    if environment is None:
        check_closed(formula)
    env = dict(environment or {})
    return _denote(structure, formula, env, tracer, guard, observer)


def holds_at(structure: KripkeStructure, formula: MuFormula, state: int) -> bool:
    """Does ``state ⊨ formula``?"""
    return state in model_check(structure, formula)


def _denote(
    structure: KripkeStructure,
    formula: MuFormula,
    env: Dict[str, StateSet],
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> StateSet:
    all_states = frozenset(range(structure.num_states))
    if isinstance(formula, Prop):
        return frozenset(
            s for s in all_states if structure.proposition_holds(formula.name, s)
        )
    if isinstance(formula, PropNeg):
        return frozenset(
            s
            for s in all_states
            if not structure.proposition_holds(formula.name, s)
        )
    if isinstance(formula, RecVar):
        try:
            return env[formula.name]
        except KeyError:
            raise EvaluationError(
                f"unbound recursion variable {formula.name!r}"
            ) from None
    if isinstance(formula, MuAnd):
        result = all_states
        for sub in formula.subs:
            result &= _denote(structure, sub, env, tracer, guard, observer)
        return result
    if isinstance(formula, MuOr):
        result: StateSet = frozenset()
        for sub in formula.subs:
            result |= _denote(structure, sub, env, tracer, guard, observer)
        return result
    if isinstance(formula, Diamond):
        target = _denote(structure, formula.sub, env, tracer, guard, observer)
        return frozenset(
            u for u, v in structure.transitions if v in target
        )
    if isinstance(formula, Box):
        target = _denote(structure, formula.sub, env, tracer, guard, observer)
        return frozenset(
            s for s in all_states if structure.successors(s) <= target
        )
    if isinstance(formula, (Mu, Nu)):
        kind = "mu" if isinstance(formula, Mu) else "nu"
        if observer.enabled:
            observer.begin(formula.var, kind)
        current = None
        try:
            if tracer.enabled:
                with tracer.span(
                    "mu.fixpoint", var=formula.var, kind=kind
                ) as span:
                    current, iterations = _iterate_fixpoint(
                        structure, formula, env, all_states, tracer, guard,
                        observer,
                    )
                    span.set(iterations=iterations, size=len(current))
            else:
                current, _ = _iterate_fixpoint(
                    structure, formula, env, all_states, tracer, guard,
                    observer,
                )
        finally:
            if observer.enabled:
                observer.end(current)
        return current
    raise EvaluationError(f"unknown µ-calculus node {formula!r}")


def _iterate_fixpoint(
    structure: KripkeStructure,
    formula: MuFormula,
    env: Dict[str, StateSet],
    all_states: StateSet,
    tracer: TracerLike,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
):
    """Kleene iteration for a µ (from ∅) or ν (from all states) node."""
    current: StateSet = frozenset() if isinstance(formula, Mu) else all_states
    iterations = 0
    if observer.enabled:
        observer.stage(0, current)
    while True:
        iterations += 1
        if guard.enabled:
            guard.charge_iteration(
                var=formula.var, iteration=iterations, size=len(current)
            )
        env[formula.var] = current
        after = _denote(structure, formula.sub, env, tracer, guard, observer)
        del env[formula.var]
        if after == current:
            return current, iterations
        if observer.enabled:
            delta = (
                after - current if isinstance(formula, Mu) else current - after
            )
            observer.stage(iterations, after, delta=delta)
        current = after
