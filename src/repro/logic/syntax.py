"""Abstract syntax trees for FO, FP, PFP, and ESO formulas.

The node set follows Section 2.2 of the paper directly:

* first-order kernel: relation atoms, equality, Boolean connectives,
  first-order quantifiers;
* fixpoint operators ``[lfp S(x̄). φ](t̄)``, ``[gfp S(x̄). φ](t̄)`` and the
  partial-fixpoint ``[pfp S(x̄). φ](t̄)`` (plus the inflationary ``ifp``
  mentioned in Section 3.2's closing remark);
* second-order existential quantification ``∃S φ`` for ESO.

All nodes are frozen dataclasses, hashable, and validated at construction.
Relation *variables* (bound by fixpoints or ``∃S``) and database relation
*symbols* share one namespace of atom names; binding resolves innermost-first
at evaluation time, mirroring the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Tuple, Union

from repro.errors import SyntaxError_

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """An individual variable (``x_1, ..., x_k`` in ``L^k``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() or not self.name[0].islower():
            raise SyntaxError_(
                f"variable name must start with a lowercase letter: {self.name!r}"
            )

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Const:
    """A constant term denoting a fixed domain value.

    Constants are not in the paper's core syntax but are convenient for
    reductions and tests; evaluators treat them as pre-bound variables.
    """

    value: Hashable

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


Term = Union[Var, Const]


def _check_terms(terms: Tuple[Term, ...], where: str) -> None:
    for t in terms:
        if not isinstance(t, (Var, Const)):
            raise SyntaxError_(f"{where}: expected a term, got {t!r}")


# ---------------------------------------------------------------------------
# Formula base
# ---------------------------------------------------------------------------


class Formula:
    """Base class for all formula nodes.

    Provides operator sugar so formulas compose readably in tests and
    examples::

        E(x, y) & ~P(x)        # And / Not
        phi | psi              # Or
        phi >> psi             # implication (desugared to ~phi | psi)
    """

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas, in syntactic order."""
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal of the formula tree (including self)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Node count — the ``|e|`` of expression complexity.

        Terms count one each so that reusing variables (the FO^3 path trick)
        and not reusing them yield comparable sizes.
        """
        total = 0
        for node in self.walk():
            total += 1
            if isinstance(node, RelAtom):
                total += len(node.terms)
            elif isinstance(node, Equals):
                total += 2
            elif isinstance(node, _FixpointBase):
                total += len(node.bound_vars) + len(node.args)
        return total


# ---------------------------------------------------------------------------
# First-order kernel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelAtom(Formula):
    """``R(t_1, ..., t_m)`` — a database relation or a relation variable."""

    name: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxError_("relation atom needs a name")
        object.__setattr__(self, "terms", tuple(self.terms))
        _check_terms(self.terms, f"atom {self.name}")

    def children(self) -> Tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Equals(Formula):
    """``t_1 = t_2``."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _check_terms((self.left, self.right), "equality")

    def children(self) -> Tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Truth(Formula):
    """The logical constants ``true`` and ``false``."""

    value: bool

    def children(self) -> Tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    sub: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction.  ``And(())`` is true."""

    subs: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))
        for s in self.subs:
            if not isinstance(s, Formula):
                raise SyntaxError_(f"And: expected a formula, got {s!r}")

    def children(self) -> Tuple[Formula, ...]:
        return self.subs


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction.  ``Or(())`` is false."""

    subs: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))
        for s in self.subs:
            if not isinstance(s, Formula):
                raise SyntaxError_(f"Or: expected a formula, got {s!r}")

    def children(self) -> Tuple[Formula, ...]:
        return self.subs


@dataclass(frozen=True)
class Exists(Formula):
    """``∃x φ``."""

    var: Var
    sub: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.var, Var):
            raise SyntaxError_(f"Exists binds a variable, got {self.var!r}")

    def children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class Forall(Formula):
    """``∀x φ``."""

    var: Var
    sub: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.var, Var):
            raise SyntaxError_(f"Forall binds a variable, got {self.var!r}")

    def children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


# ---------------------------------------------------------------------------
# Fixpoint operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FixpointBase(Formula):
    """Shared shape of ``[op S(x_1..x_m). φ](t_1..t_m)``.

    ``rel`` is the recursive relation variable, bound inside ``body``;
    ``bound_vars`` are the m distinct individual variables the relation
    abstracts over; ``args`` are the m terms the fixpoint is applied to.
    """

    rel: str
    bound_vars: Tuple[Var, ...]
    body: Formula
    args: Tuple[Term, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "bound_vars", tuple(self.bound_vars))
        object.__setattr__(self, "args", tuple(self.args))
        if not self.rel:
            raise SyntaxError_("fixpoint needs a relation variable name")
        names = [v.name for v in self.bound_vars]
        if len(set(names)) != len(names):
            raise SyntaxError_(
                f"fixpoint over {self.rel}: bound variables must be distinct, "
                f"got {names}"
            )
        if len(self.args) != len(self.bound_vars):
            raise SyntaxError_(
                f"fixpoint over {self.rel}: {len(self.bound_vars)} bound "
                f"variables but {len(self.args)} arguments"
            )
        _check_terms(self.args, f"fixpoint {self.rel} arguments")

    @property
    def arity(self) -> int:
        """Arity of the recursive relation (bounded by k in ``FP^k``)."""
        return len(self.bound_vars)

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class LFP(_FixpointBase):
    """Least fixpoint ``[μS(x̄). φ](t̄)``; ``S`` must occur positively."""


@dataclass(frozen=True)
class GFP(_FixpointBase):
    """Greatest fixpoint ``[νS(x̄). φ](t̄)``; ``S`` must occur positively."""


@dataclass(frozen=True)
class PFP(_FixpointBase):
    """Partial fixpoint ``[pfp S(x̄). φ](t̄)``; no positivity requirement.

    If the iteration sequence ``∅, φ(∅), φ(φ(∅)), ...`` has no limit, the
    partial fixpoint is the empty relation (Section 2.2).
    """


@dataclass(frozen=True)
class IFP(_FixpointBase):
    """Inflationary fixpoint ``[ifp S(x̄). φ](t̄)``.

    Iterates ``S_{i+1} = S_i ∪ φ(S_i)``, which always converges; mentioned in
    the paper's Section 3.2 closing remark (the IFP^k upper bound is open).
    """


# ---------------------------------------------------------------------------
# Second-order quantification (ESO)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SOExists(Formula):
    """``∃S φ`` — existential quantification over an ``arity``-ary relation.

    ESO formulas are ``SOExists`` chains over a first-order matrix (Fagin's
    logic).  The engine also accepts them anywhere a formula may appear.
    """

    rel: str
    arity: int
    body: Formula

    def __post_init__(self) -> None:
        if not self.rel:
            raise SyntaxError_("second-order quantifier needs a relation name")
        if self.arity < 0:
            raise SyntaxError_(
                f"second-order relation {self.rel!r}: arity must be >= 0"
            )

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)


FIXPOINT_NODES = (LFP, GFP, PFP, IFP)
