"""Normal forms: negation normal form and light simplification.

NNF pushes negations down to atoms, turning ``¬∃`` into ``∀¬``, ``¬[lfp]``
into ``[gfp]`` of the dualized body, and ``¬[gfp]`` into ``[lfp]`` — the
duality ``t ∉ σS.φ  ⟺  t ∈ σ̄S.¬φ[S := ¬S]`` that Section 3.2 uses for the
co-NP direction of Theorem 3.5.  ``¬[pfp]``, ``¬[ifp]`` and ``¬∃S`` have no
first-class dual and stay as negations at those nodes.
"""

from __future__ import annotations

from repro.errors import SyntaxError_
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    _FixpointBase,
)
from repro.logic.substitution import substitute_relation


def negate_fixpoint_dual(node: _FixpointBase) -> Formula:
    """The dual fixpoint: ``¬[μS.φ](t̄) = [νS. ¬φ[S := ¬S]](t̄)`` and vice versa.

    Only defined for LFP/GFP; duality of the partial fixpoint fails in
    general (the pfp of the dualized body is not the complement).
    """
    if isinstance(node, LFP):
        dual = GFP
    elif isinstance(node, GFP):
        dual = LFP
    else:
        raise SyntaxError_("only lfp/gfp fixpoints have first-class duals")
    negated_rel = Not(RelAtom(node.rel, node.bound_vars))
    dual_body = Not(
        substitute_relation(node.body, node.rel, node.bound_vars, negated_rel)
    )
    return dual(node.rel, node.bound_vars, dual_body, node.args)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form of ``formula``.

    The result contains ``Not`` only immediately above atoms, equalities,
    ``pfp``/``ifp`` fixpoints, and second-order quantifiers.
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, (RelAtom, Equals)):
        return Not(formula) if negate else formula
    if isinstance(formula, Truth):
        return Truth(formula.value != negate)
    if isinstance(formula, Not):
        return _nnf(formula.sub, not negate)
    if isinstance(formula, And):
        subs = tuple(_nnf(s, negate) for s in formula.subs)
        return Or(subs) if negate else And(subs)
    if isinstance(formula, Or):
        subs = tuple(_nnf(s, negate) for s in formula.subs)
        return And(subs) if negate else Or(subs)
    if isinstance(formula, Exists):
        sub = _nnf(formula.sub, negate)
        return Forall(formula.var, sub) if negate else Exists(formula.var, sub)
    if isinstance(formula, Forall):
        sub = _nnf(formula.sub, negate)
        return Exists(formula.var, sub) if negate else Forall(formula.var, sub)
    if isinstance(formula, (LFP, GFP)):
        if negate:
            return _nnf(negate_fixpoint_dual(formula), negate=False)
        return type(formula)(
            formula.rel,
            formula.bound_vars,
            _nnf(formula.body, negate=False),
            formula.args,
        )
    if isinstance(formula, (PFP, IFP)):
        rebuilt = type(formula)(
            formula.rel,
            formula.bound_vars,
            _nnf(formula.body, negate=False),
            formula.args,
        )
        return Not(rebuilt) if negate else rebuilt
    if isinstance(formula, SOExists):
        rebuilt = SOExists(
            formula.rel, formula.arity, _nnf(formula.body, negate=False)
        )
        return Not(rebuilt) if negate else rebuilt
    raise SyntaxError_(f"unknown formula node {formula!r}")


def simplify(formula: Formula) -> Formula:
    """Constant folding and connective flattening.

    Logically equivalence-preserving: drops ``true`` from conjunctions,
    ``false`` from disjunctions, collapses double negation, flattens nested
    same-kind connectives, and short-circuits on absorbing constants.
    """
    if isinstance(formula, (RelAtom, Equals, Truth)):
        return formula
    if isinstance(formula, Not):
        sub = simplify(formula.sub)
        if isinstance(sub, Truth):
            return Truth(not sub.value)
        if isinstance(sub, Not):
            return sub.sub
        return Not(sub)
    if isinstance(formula, (And, Or)):
        is_and = isinstance(formula, And)
        absorbing = Truth(not is_and)
        neutral = Truth(is_and)
        flat = []
        for sub in formula.subs:
            simplified = simplify(sub)
            if simplified == absorbing:
                return absorbing
            if simplified == neutral:
                continue
            if type(simplified) is type(formula):
                flat.extend(simplified.subs)
            else:
                flat.append(simplified)
        if not flat:
            return neutral
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat)) if is_and else Or(tuple(flat))
    if isinstance(formula, (Exists, Forall)):
        sub = simplify(formula.sub)
        if isinstance(sub, Truth):
            # Valid only on non-empty domains; all paper databases have
            # non-empty domains (D is a finite set of naturals with at least
            # the values mentioned by the relations).
            return sub
        return type(formula)(formula.var, sub)
    if isinstance(formula, _FixpointBase):
        return type(formula)(
            formula.rel, formula.bound_vars, simplify(formula.body), formula.args
        )
    if isinstance(formula, SOExists):
        return SOExists(formula.rel, formula.arity, simplify(formula.body))
    raise SyntaxError_(f"unknown formula node {formula!r}")
