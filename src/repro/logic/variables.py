"""Variable analyses: free variables and variable width.

The *variable width* of a formula — the number of distinct individual
variable names it uses, free or bound — is the ``k`` of the bounded-variable
languages: a formula belongs to ``L^k`` exactly when its width is at most
``k`` (Section 2.2: "restricting the individual variables to be among
``x_1, ..., x_k``").
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.errors import SyntaxError_


def _term_vars(terms: Tuple[Term, ...]) -> Set[str]:
    return {t.name for t in terms if isinstance(t, Var)}


def free_variables(formula: Formula) -> FrozenSet[str]:
    """Names of the free individual variables of ``formula``.

    For a fixpoint ``[op S(x̄). φ](t̄)`` the free variables are those of
    ``φ`` minus ``x̄``, plus the variables of the argument terms ``t̄``
    (the paper: "whose free variables are those in y and z").
    """
    if isinstance(formula, RelAtom):
        return frozenset(_term_vars(formula.terms))
    if isinstance(formula, Equals):
        return frozenset(_term_vars((formula.left, formula.right)))
    if isinstance(formula, Truth):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.sub)
    if isinstance(formula, (And, Or)):
        out: Set[str] = set()
        for sub in formula.subs:
            out |= free_variables(sub)
        return frozenset(out)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.sub) - {formula.var.name}
    if isinstance(formula, _FixpointBase):
        bound = {v.name for v in formula.bound_vars}
        return frozenset(
            (free_variables(formula.body) - bound) | _term_vars(formula.args)
        )
    if isinstance(formula, SOExists):
        return free_variables(formula.body)
    raise SyntaxError_(f"unknown formula node {formula!r}")


def variable_names(formula: Formula) -> FrozenSet[str]:
    """All distinct individual variable names occurring in ``formula``."""
    names: Set[str] = set()
    for node in formula.walk():
        if isinstance(node, RelAtom):
            names |= _term_vars(node.terms)
        elif isinstance(node, Equals):
            names |= _term_vars((node.left, node.right))
        elif isinstance(node, (Exists, Forall)):
            names.add(node.var.name)
        elif isinstance(node, _FixpointBase):
            names |= {v.name for v in node.bound_vars}
            names |= _term_vars(node.args)
    return frozenset(names)


def variable_width(formula: Formula) -> int:
    """The number of distinct individual variables — the ``k`` of ``L^k``."""
    return len(variable_names(formula))


def free_relation_variables(formula: Formula) -> FrozenSet[str]:
    """Relation names used in ``formula`` and not bound within it.

    The result mixes database relation symbols with genuinely free relation
    variables; callers that know the schema can separate the two.  Fixpoint
    operators and second-order quantifiers are the binders.
    """
    if isinstance(formula, RelAtom):
        return frozenset({formula.name})
    if isinstance(formula, (Equals, Truth)):
        return frozenset()
    if isinstance(formula, Not):
        return free_relation_variables(formula.sub)
    if isinstance(formula, (And, Or)):
        out: Set[str] = set()
        for sub in formula.subs:
            out |= free_relation_variables(sub)
        return frozenset(out)
    if isinstance(formula, (Exists, Forall)):
        return free_relation_variables(formula.sub)
    if isinstance(formula, _FixpointBase):
        return free_relation_variables(formula.body) - {formula.rel}
    if isinstance(formula, SOExists):
        return free_relation_variables(formula.body) - {formula.rel}
    raise SyntaxError_(f"unknown formula node {formula!r}")


def bound_relation_variables(formula: Formula) -> FrozenSet[str]:
    """All relation names bound somewhere inside ``formula``."""
    names: Set[str] = set()
    for node in formula.walk():
        if isinstance(node, _FixpointBase):
            names.add(node.rel)
        elif isinstance(node, SOExists):
            names.add(node.rel)
    return frozenset(names)


def is_sentence(formula: Formula) -> bool:
    """True when ``formula`` has no free individual variables."""
    return not free_variables(formula)


def constants_used(formula: Formula) -> FrozenSet[object]:
    """All constant values occurring in ``formula``."""
    values: Set[object] = set()
    for node in formula.walk():
        terms: Tuple[Term, ...] = ()
        if isinstance(node, RelAtom):
            terms = node.terms
        elif isinstance(node, Equals):
            terms = (node.left, node.right)
        elif isinstance(node, _FixpointBase):
            terms = node.args
        for t in terms:
            if isinstance(t, Const):
                values.add(t.value)
    return frozenset(values)
