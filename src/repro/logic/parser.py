"""Parser for the concrete formula syntax.

The grammar (loosest binding first; quantifiers take maximal scope)::

    formula  := quant | or
    quant    := ('exists' | 'forall') NAME '.' formula
              | 'exists2' NAME '/' INT '.' formula
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary | quant | primary
    primary  := '(' formula ')'
              | 'true' | 'false'
              | '[' FPKW NAME '(' names? ')' '.' formula ']' '(' terms? ')'
              | NAME '(' terms? ')'
              | term ('=' | '!=') term
    term     := NAME | INT | STRING
    FPKW     := 'lfp' | 'gfp' | 'pfp' | 'ifp'

Implication ``->`` and biconditional ``<->`` are accepted as sugar between
``or`` operands (right-associative) and desugared immediately, matching
:mod:`repro.logic.builders`.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import SyntaxError_
from repro.logic.builders import iff, implies
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
)

_KEYWORDS = {
    "exists",
    "forall",
    "exists2",
    "true",
    "false",
    "lfp",
    "gfp",
    "pfp",
    "ifp",
}

_FIXPOINT_NODE = {"lfp": LFP, "gfp": GFP, "pfp": PFP, "ifp": IFP}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_'-]*)
  | (?P<int>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<op><->|->|!=|[~&|().,=\[\]/])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SyntaxError_(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def parse_formula(text: str) -> Formula:
    """Parse the concrete syntax into a formula AST.

    >>> from repro.logic.printer import format_formula
    >>> format_formula(parse_formula("exists y. E(x, y) & P(y)"))
    'exists y. E(x, y) & P(y)'
    """
    parser = _FormulaParser(_tokenize(text))
    formula = parser.parse_full()
    return formula


class _FormulaParser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token.kind != "op" or token.text != op:
            raise SyntaxError_(
                f"expected {op!r} at position {token.pos}, found {token.text!r}"
            )
        self._advance()

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text == op

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "name" and token.text == word

    # -- grammar -----------------------------------------------------------

    def parse_full(self) -> Formula:
        formula = self._formula()
        token = self._peek()
        if token.kind != "eof":
            raise SyntaxError_(
                f"trailing input at position {token.pos}: {token.text!r}"
            )
        return formula

    def _formula(self) -> Formula:
        quantified = self._try_quantifier()
        if quantified is not None:
            return quantified
        return self._implication()

    def _try_quantifier(self) -> Optional[Formula]:
        if self._at_keyword("exists") or self._at_keyword("forall"):
            keyword = self._advance().text
            var = Var(self._name("variable"))
            self._expect_op(".")
            body = self._formula()
            node = Exists if keyword == "exists" else Forall
            return node(var, body)
        if self._at_keyword("exists2"):
            self._advance()
            rel = self._name("relation variable")
            self._expect_op("/")
            token = self._peek()
            if token.kind != "int":
                raise SyntaxError_(
                    f"expected arity after '/' at position {token.pos}"
                )
            arity = int(self._advance().text)
            self._expect_op(".")
            return SOExists(rel, arity, self._formula())
        return None

    def _implication(self) -> Formula:
        left = self._or()
        if self._at_op("->"):
            self._advance()
            return implies(left, self._formula())
        if self._at_op("<->"):
            self._advance()
            return iff(left, self._formula())
        return left

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._at_op("|"):
            self._advance()
            parts.append(self._and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._at_op("&"):
            self._advance()
            parts.append(self._unary())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def _unary(self) -> Formula:
        if self._at_op("~"):
            self._advance()
            return Not(self._unary())
        quantified = self._try_quantifier()
        if quantified is not None:
            return quantified
        return self._primary()

    def _primary(self) -> Formula:
        token = self._peek()
        if self._at_op("("):
            self._advance()
            inner = self._formula()
            self._expect_op(")")
            return self._maybe_equality_tail(inner)
        if self._at_op("["):
            return self._fixpoint()
        if token.kind == "name":
            if token.text == "true":
                self._advance()
                return Truth(True)
            if token.text == "false":
                self._advance()
                return Truth(False)
            if token.text in _KEYWORDS:
                raise SyntaxError_(
                    f"keyword {token.text!r} cannot start a primary formula "
                    f"(position {token.pos})"
                )
            # Relation atom or term comparison.
            name = self._advance().text
            if self._at_op("("):
                self._advance()
                terms = self._terms_until(")")
                return RelAtom(name, terms)
            return self._equality_from(Var(name))
        if token.kind in ("int", "string"):
            return self._equality_from(self._term())
        raise SyntaxError_(
            f"expected a formula at position {token.pos}, found {token.text!r}"
        )

    def _maybe_equality_tail(self, inner: Formula) -> Formula:
        # Parenthesized formulas never continue into '='; equality operands
        # are bare terms only, keeping the grammar unambiguous.
        return inner

    def _equality_from(self, left: Term) -> Formula:
        if self._at_op("="):
            self._advance()
            return Equals(left, self._term())
        if self._at_op("!="):
            self._advance()
            return Not(Equals(left, self._term()))
        token = self._peek()
        raise SyntaxError_(
            f"expected '=' or '!=' after term at position {token.pos}, "
            f"found {token.text!r}"
        )

    def _fixpoint(self) -> Formula:
        self._expect_op("[")
        token = self._peek()
        if token.kind != "name" or token.text not in _FIXPOINT_NODE:
            raise SyntaxError_(
                f"expected lfp/gfp/pfp/ifp at position {token.pos}, "
                f"found {token.text!r}"
            )
        node = _FIXPOINT_NODE[self._advance().text]
        rel = self._name("fixpoint relation")
        self._expect_op("(")
        bound: List[Var] = []
        if not self._at_op(")"):
            bound.append(Var(self._name("bound variable")))
            while self._at_op(","):
                self._advance()
                bound.append(Var(self._name("bound variable")))
        self._expect_op(")")
        self._expect_op(".")
        body = self._formula()
        self._expect_op("]")
        self._expect_op("(")
        args = self._terms_until(")")
        return node(rel, tuple(bound), body, args)

    def _terms_until(self, closing: str) -> Tuple[Term, ...]:
        terms: List[Term] = []
        if not self._at_op(closing):
            terms.append(self._term())
            while self._at_op(","):
                self._advance()
                terms.append(self._term())
        self._expect_op(closing)
        return tuple(terms)

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "name":
            if token.text in _KEYWORDS:
                raise SyntaxError_(
                    f"keyword {token.text!r} cannot be a term "
                    f"(position {token.pos})"
                )
            self._advance()
            return Var(token.text)
        if token.kind == "int":
            self._advance()
            return Const(int(token.text))
        if token.kind == "string":
            self._advance()
            raw = token.text[1:-1]
            return Const(raw.replace("\\'", "'").replace("\\\\", "\\"))
        raise SyntaxError_(
            f"expected a term at position {token.pos}, found {token.text!r}"
        )

    def _name(self, what: str) -> str:
        token = self._peek()
        if token.kind != "name" or token.text in _KEYWORDS:
            raise SyntaxError_(
                f"expected a {what} name at position {token.pos}, "
                f"found {token.text!r}"
            )
        return self._advance().text
