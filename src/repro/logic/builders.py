"""A small fluent DSL for constructing formulas.

The AST constructors in :mod:`repro.logic.syntax` are exact but verbose;
these helpers accept bare strings for variables and desugar implication,
biconditional, and inequality, so tests, examples and reductions stay
readable::

    from repro.logic.builders import atom, exists, forall, implies, V

    phi = exists("y", atom("E", "x", "y") & forall("x", implies(
        atom("P", "x"), atom("E", "y", "x"))))
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
)

TermLike = Union[str, Term]


def V(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


def C(value: object) -> Const:
    """Shorthand constant constructor."""
    return Const(value)


def _term(t: TermLike) -> Term:
    if isinstance(t, str):
        return Var(t)
    return t


def atom(name: str, *terms: TermLike) -> RelAtom:
    """``name(t1, ..., tm)`` with strings auto-promoted to variables."""
    return RelAtom(name, tuple(_term(t) for t in terms))


def eq(left: TermLike, right: TermLike) -> Equals:
    """``t1 = t2``."""
    return Equals(_term(left), _term(right))


def neq(left: TermLike, right: TermLike) -> Formula:
    """``t1 ≠ t2`` (desugared to a negated equality)."""
    return Not(eq(left, right))


def true_() -> Truth:
    return Truth(True)


def false_() -> Truth:
    return Truth(False)


def not_(sub: Formula) -> Not:
    return Not(sub)


def and_(*subs: Formula) -> Formula:
    """N-ary conjunction; flattens nested ``And`` nodes, drops ``true``."""
    flat = []
    for s in subs:
        if isinstance(s, And):
            flat.extend(s.subs)
        elif isinstance(s, Truth) and s.value:
            continue
        else:
            flat.append(s)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*subs: Formula) -> Formula:
    """N-ary disjunction; flattens nested ``Or`` nodes, drops ``false``."""
    flat = []
    for s in subs:
        if isinstance(s, Or):
            flat.extend(s.subs)
        elif isinstance(s, Truth) and not s.value:
            continue
        else:
            flat.append(s)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``φ → ψ``, desugared to ``¬φ ∨ ψ``."""
    return Or((Not(antecedent), consequent))


def iff(left: Formula, right: Formula) -> Formula:
    """``φ ↔ ψ``, desugared to ``(φ → ψ) ∧ (ψ → φ)``."""
    return And((implies(left, right), implies(right, left)))


def exists(variables: Union[str, Sequence[str]], sub: Formula) -> Formula:
    """``∃x_1 ... ∃x_m φ`` — accepts one name or a sequence of names."""
    return _quantify(Exists, variables, sub)


def forall(variables: Union[str, Sequence[str]], sub: Formula) -> Formula:
    """``∀x_1 ... ∀x_m φ`` — accepts one name or a sequence of names."""
    return _quantify(Forall, variables, sub)


def _quantify(node, variables, sub: Formula) -> Formula:
    if isinstance(variables, str):
        variables = [variables]
    result = sub
    for name in reversed(list(variables)):
        result = node(Var(name), result)
    return result


def lfp(
    rel: str,
    bound_vars: Iterable[str],
    body: Formula,
    args: Iterable[TermLike],
) -> LFP:
    """``[μ rel(x̄). body](args)``."""
    return LFP(
        rel,
        tuple(Var(v) for v in bound_vars),
        body,
        tuple(_term(a) for a in args),
    )


def gfp(
    rel: str,
    bound_vars: Iterable[str],
    body: Formula,
    args: Iterable[TermLike],
) -> GFP:
    """``[ν rel(x̄). body](args)``."""
    return GFP(
        rel,
        tuple(Var(v) for v in bound_vars),
        body,
        tuple(_term(a) for a in args),
    )


def pfp(
    rel: str,
    bound_vars: Iterable[str],
    body: Formula,
    args: Iterable[TermLike],
) -> PFP:
    """``[pfp rel(x̄). body](args)``."""
    return PFP(
        rel,
        tuple(Var(v) for v in bound_vars),
        body,
        tuple(_term(a) for a in args),
    )


def ifp(
    rel: str,
    bound_vars: Iterable[str],
    body: Formula,
    args: Iterable[TermLike],
) -> IFP:
    """``[ifp rel(x̄). body](args)``."""
    return IFP(
        rel,
        tuple(Var(v) for v in bound_vars),
        body,
        tuple(_term(a) for a in args),
    )


def so_exists(rel: str, arity: int, body: Formula) -> SOExists:
    """``∃S φ`` with ``S`` of the given arity."""
    return SOExists(rel, arity, body)
