"""Syntax of the four query languages of the paper (Section 2.2).

This subpackage defines the abstract syntax shared by first-order logic (FO),
fixpoint logic (FP: least and greatest fixpoints), partial-fixpoint logic
(PFP), and existential second-order logic (ESO), together with:

* a parser and pretty-printer for a concrete text syntax,
* free-variable and variable-width analysis (the ``k`` of ``L^k``),
* capture-avoiding substitution and bound-variable renaming,
* structural analyses: positivity of recursion variables, fixpoint
  alternation depth, language classification (is this formula FO? FP? ...).

Formulas are immutable; all transformations build new trees.
"""

from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
)
from repro.logic.variables import free_variables, variable_names, variable_width
from repro.logic.analysis import (
    alternation_depth,
    check_positivity,
    classify_language,
    Language,
)
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula

__all__ = [
    "Term",
    "Var",
    "Const",
    "Formula",
    "RelAtom",
    "Equals",
    "Truth",
    "Not",
    "And",
    "Or",
    "Exists",
    "Forall",
    "LFP",
    "GFP",
    "PFP",
    "IFP",
    "SOExists",
    "free_variables",
    "variable_names",
    "variable_width",
    "alternation_depth",
    "check_positivity",
    "classify_language",
    "Language",
    "parse_formula",
    "format_formula",
]
