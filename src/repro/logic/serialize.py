"""JSON serialization of formulas and databases.

A stable, versioned interchange format so queries and databases can move
between tools without going through the concrete text syntax (which is
also supported — see :mod:`repro.logic.parser` — but JSON is friendlier
to programmatic construction and language bindings).

``formula_to_json`` / ``formula_from_json`` round-trip every AST node;
``database_to_json`` / ``database_from_json`` do the same for instances
(any JSON-representable domain values).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import SyntaxError_
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)

FORMAT_VERSION = 1

_FIXPOINT_TAG = {LFP: "lfp", GFP: "gfp", PFP: "pfp", IFP: "ifp"}
_TAG_FIXPOINT = {v: k for k, v in _FIXPOINT_TAG.items()}


def _term_to_json(term: Term) -> Dict[str, Any]:
    if isinstance(term, Var):
        return {"var": term.name}
    if isinstance(term, Const):
        return {"const": term.value}
    raise SyntaxError_(f"unknown term {term!r}")


def _term_from_json(data: Dict[str, Any]) -> Term:
    if not isinstance(data, dict):
        raise SyntaxError_(f"term must be an object, got {data!r}")
    if "var" in data:
        return Var(data["var"])
    if "const" in data:
        return Const(data["const"])
    raise SyntaxError_(f"malformed term {data!r}")


def formula_to_json(formula: Formula) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a formula."""
    if isinstance(formula, RelAtom):
        return {
            "op": "atom",
            "name": formula.name,
            "terms": [_term_to_json(t) for t in formula.terms],
        }
    if isinstance(formula, Equals):
        return {
            "op": "eq",
            "left": _term_to_json(formula.left),
            "right": _term_to_json(formula.right),
        }
    if isinstance(formula, Truth):
        return {"op": "true" if formula.value else "false"}
    if isinstance(formula, Not):
        return {"op": "not", "sub": formula_to_json(formula.sub)}
    if isinstance(formula, (And, Or)):
        return {
            "op": "and" if isinstance(formula, And) else "or",
            "subs": [formula_to_json(s) for s in formula.subs],
        }
    if isinstance(formula, (Exists, Forall)):
        return {
            "op": "exists" if isinstance(formula, Exists) else "forall",
            "var": formula.var.name,
            "sub": formula_to_json(formula.sub),
        }
    if isinstance(formula, _FixpointBase):
        return {
            "op": _FIXPOINT_TAG[type(formula)],
            "rel": formula.rel,
            "bound": [v.name for v in formula.bound_vars],
            "body": formula_to_json(formula.body),
            "args": [_term_to_json(t) for t in formula.args],
        }
    if isinstance(formula, SOExists):
        return {
            "op": "so_exists",
            "rel": formula.rel,
            "arity": formula.arity,
            "body": formula_to_json(formula.body),
        }
    raise SyntaxError_(f"unknown formula node {formula!r}")


def formula_from_json(data: Dict[str, Any]) -> Formula:
    """Inverse of :func:`formula_to_json`."""
    if not isinstance(data, dict) or "op" not in data:
        raise SyntaxError_(f"formula must be an object with 'op': {data!r}")
    op = data["op"]
    try:
        if op == "atom":
            return RelAtom(
                data["name"],
                tuple(_term_from_json(t) for t in data["terms"]),
            )
        if op == "eq":
            return Equals(
                _term_from_json(data["left"]), _term_from_json(data["right"])
            )
        if op == "true":
            return Truth(True)
        if op == "false":
            return Truth(False)
        if op == "not":
            return Not(formula_from_json(data["sub"]))
        if op in ("and", "or"):
            subs = tuple(formula_from_json(s) for s in data["subs"])
            return And(subs) if op == "and" else Or(subs)
        if op in ("exists", "forall"):
            node = Exists if op == "exists" else Forall
            return node(Var(data["var"]), formula_from_json(data["sub"]))
        if op in _TAG_FIXPOINT:
            return _TAG_FIXPOINT[op](
                data["rel"],
                tuple(Var(v) for v in data["bound"]),
                formula_from_json(data["body"]),
                tuple(_term_from_json(t) for t in data["args"]),
            )
        if op == "so_exists":
            return SOExists(
                data["rel"], data["arity"], formula_from_json(data["body"])
            )
    except KeyError as missing:
        raise SyntaxError_(f"node {op!r} is missing field {missing}") from None
    raise SyntaxError_(f"unknown formula op {op!r}")


def formula_dumps(formula: Formula, indent: int = None) -> str:
    """Formula → JSON text (with the format version stamped)."""
    return json.dumps(
        {"version": FORMAT_VERSION, "formula": formula_to_json(formula)},
        indent=indent,
    )


def formula_loads(text: str) -> Formula:
    """JSON text → formula, checking the format version."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SyntaxError_(f"invalid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != FORMAT_VERSION:
        raise SyntaxError_(
            f"unsupported format version {data.get('version') if isinstance(data, dict) else data!r}"
        )
    return formula_from_json(data["formula"])


def database_to_json(db: Database) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a database instance."""
    return {
        "domain": list(db.domain.values),
        "relations": {
            name: {
                "arity": db.relation(name).arity,
                "tuples": sorted(
                    [list(t) for t in db.relation(name).tuples], key=repr
                ),
            }
            for name in db.relation_names()
        },
    }


def database_from_json(data: Dict[str, Any]) -> Database:
    """Inverse of :func:`database_to_json`."""
    from repro.errors import SchemaError

    if not isinstance(data, dict) or "domain" not in data:
        raise SchemaError(f"database must be an object with 'domain'")
    relations = {}
    for name, rel in data.get("relations", {}).items():
        relations[name] = Relation(
            rel["arity"], [tuple(t) for t in rel["tuples"]]
        )
    return Database(Domain(data["domain"]), relations)


def database_dumps(db: Database, indent: int = None) -> str:
    return json.dumps(
        {"version": FORMAT_VERSION, "database": database_to_json(db)},
        indent=indent,
    )


def database_loads(text: str) -> Database:
    from repro.errors import SchemaError

    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"invalid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != FORMAT_VERSION:
        raise SchemaError("unsupported format version")
    return database_from_json(data["database"])
