"""Structural analyses: positivity, alternation depth, language class.

These implement the side conditions and the complexity parameters of
Section 2.2 / Section 3.2:

* least/greatest fixpoints require their recursion variable to occur
  *positively* (under an even number of negations);
* the cost of naive nested fixpoint evaluation is ``n^{k·l}`` where ``l`` is
  the *alternation depth* — the nesting depth of alternating, mutually
  dependent least and greatest fixpoints;
* Table rows are per-language, so formulas are classified into
  FO ⊂ FP ⊂ PFP and ESO.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.errors import PositivityError, SyntaxError_
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    _FixpointBase,
)


class Language(enum.Enum):
    """The four query languages of the paper, ordered by expressive power."""

    FO = "FO"
    FP = "FP"
    PFP = "PFP"
    ESO = "ESO"


def classify_language(formula: Formula) -> Language:
    """Smallest of the paper's languages containing ``formula``.

    A formula with both second-order quantifiers and fixpoints has no slot in
    the paper's taxonomy; we classify it as ESO if any ``∃S`` occurs (ESO's
    matrix is first-order in the paper, but the engine is more liberal).
    """
    has_so = False
    has_pfp = False
    has_fp = False
    for node in formula.walk():
        if isinstance(node, SOExists):
            has_so = True
        elif isinstance(node, (PFP, IFP)):
            has_pfp = True
        elif isinstance(node, (LFP, GFP)):
            has_fp = True
    if has_so:
        return Language.ESO
    if has_pfp:
        return Language.PFP
    if has_fp:
        return Language.FP
    return Language.FO


def polarity_of(formula: Formula, rel: str) -> Optional[str]:
    """Polarity with which relation ``rel`` occurs free in ``formula``.

    Returns ``"positive"``, ``"negative"``, ``"both"``, or ``None`` when the
    relation does not occur free.  Universal quantifiers and conjunction do
    not flip polarity; only negation does.
    """
    pos, neg = _polarities(formula, rel, positive=True)
    if pos and neg:
        return "both"
    if pos:
        return "positive"
    if neg:
        return "negative"
    return None


def _polarities(formula: Formula, rel: str, positive: bool) -> Tuple[bool, bool]:
    if isinstance(formula, RelAtom):
        if formula.name == rel:
            return (positive, not positive)
        return (False, False)
    if isinstance(formula, (Equals, Truth)):
        return (False, False)
    if isinstance(formula, Not):
        return _polarities(formula.sub, rel, not positive)
    if isinstance(formula, (And, Or)):
        pos = neg = False
        for sub in formula.subs:
            p, n = _polarities(sub, rel, positive)
            pos, neg = pos or p, neg or n
        return (pos, neg)
    if isinstance(formula, (Exists, Forall)):
        return _polarities(formula.sub, rel, positive)
    if isinstance(formula, _FixpointBase):
        if formula.rel == rel:
            return (False, False)
        return _polarities(formula.body, rel, positive)
    if isinstance(formula, SOExists):
        if formula.rel == rel:
            return (False, False)
        return _polarities(formula.body, rel, positive)
    raise SyntaxError_(f"unknown formula node {formula!r}")


def check_positivity(formula: Formula) -> None:
    """Raise :class:`PositivityError` unless every LFP/GFP is monotone.

    Every least or greatest fixpoint in the tree must bind its recursion
    variable positively in its body.  PFP and IFP are exempt by definition.
    """
    for node in formula.walk():
        if isinstance(node, (LFP, GFP)):
            polarity = polarity_of(node.body, node.rel)
            if polarity in ("negative", "both"):
                kind = "lfp" if isinstance(node, LFP) else "gfp"
                raise PositivityError(
                    f"recursion variable {node.rel!r} occurs {polarity}ly in "
                    f"the body of a {kind} operator"
                )


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of first-order quantifiers.

    The classical Ehrenfeucht-Fraïssé parameter; contrast with
    :func:`repro.logic.variables.variable_width`: the FO^3 path queries
    have rank Θ(n) but width 3 — rank measures *rounds*, width measures
    *pebbles*.  Fixpoint bodies and second-order bodies count through.
    """
    if isinstance(formula, (RelAtom, Equals, Truth)):
        return 0
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_rank(formula.sub)
    return max(
        (quantifier_rank(c) for c in formula.children()), default=0
    )


def fixpoint_nesting_depth(formula: Formula) -> int:
    """Maximum depth of syntactically nested fixpoint operators."""
    if isinstance(formula, _FixpointBase):
        return 1 + fixpoint_nesting_depth(formula.body)
    return max(
        (fixpoint_nesting_depth(c) for c in formula.children()), default=0
    )


def alternation_depth(formula: Formula) -> int:
    """Alternation depth ``l`` of least/greatest fixpoints.

    The standard dependent notion: ``ad(φ) = 0`` for fixpoint-free ``φ``,
    and for ``σ ∈ {μ, ν}``::

        ad(σS. φ) = max(1, ad(φ),
                        1 + max{ ad(σ'T. ψ) : σ'T. ψ a subformula of φ of
                                 the opposite kind with S free in it })

    Independent nesting (the inner fixpoint never mentions ``S``) does not
    alternate.  This is the parameter ``l`` of the naive ``n^{k·l}`` cost in
    Section 3.2 and of Theorem 3.5's ``l·n^k`` speed-up.  PFP/IFP operators
    contribute their nesting but have no μ/ν alternation notion.
    """
    from repro.logic.variables import free_relation_variables

    if isinstance(formula, (LFP, GFP)):
        opposite = GFP if isinstance(formula, LFP) else LFP
        best = max(1, alternation_depth(formula.body))
        for sub in formula.body.walk():
            if isinstance(sub, opposite) and formula.rel in free_relation_variables(
                sub
            ):
                best = max(best, 1 + alternation_depth(sub))
        return best
    if isinstance(formula, (PFP, IFP)):
        return max(1, alternation_depth(formula.body))
    return max(
        (alternation_depth(c) for c in formula.children()), default=0
    )


def _kind_of(node: _FixpointBase) -> str:
    if isinstance(node, LFP):
        return "lfp"
    if isinstance(node, GFP):
        return "gfp"
    if isinstance(node, PFP):
        return "pfp"
    if isinstance(node, IFP):
        return "ifp"
    raise SyntaxError_(f"unknown fixpoint node {node!r}")


def max_fixpoint_arity(formula: Formula) -> int:
    """Largest arity of any recursion variable (bounded by k in FP^k)."""
    return max(
        (n.arity for n in formula.walk() if isinstance(n, _FixpointBase)),
        default=0,
    )


def max_so_arity(formula: Formula) -> int:
    """Largest arity of any second-order quantified relation.

    In ESO^k this is *not* bounded by k before the Lemma 3.6 rewriting —
    that unboundedness is exactly the difficulty Section 3.3 addresses.
    """
    return max(
        (n.arity for n in formula.walk() if isinstance(n, SOExists)), default=0
    )


def count_nodes_by_type(formula: Formula) -> Dict[str, int]:
    """Histogram of node type names, for diagnostics and benchmarks."""
    counts: Dict[str, int] = {}
    for node in formula.walk():
        name = type(node).__name__
        counts[name] = counts.get(name, 0) + 1
    return counts
