"""Capture-avoiding substitution and renaming.

Used by the bounded-variable rewrites (Section 2.2's FO^3 path trick works by
*reusing* variables, which only makes sense with precise scoping), by the
lower-bound reductions (Prop 3.2 substitutes a formula for a relation atom),
and by the naive reference evaluator.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping, Set, Tuple

from repro.errors import SyntaxError_
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import variable_names


def fresh_names(avoid: Iterable[str], prefix: str = "v") -> Iterator[str]:
    """An endless supply of variable names not clashing with ``avoid``."""
    used: Set[str] = set(avoid)
    for i in itertools.count():
        candidate = f"{prefix}{i}"
        if candidate not in used:
            used.add(candidate)
            yield candidate


def _subst_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    if isinstance(term, Var) and term.name in mapping:
        return mapping[term.name]
    return term


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Simultaneously substitute terms for free individual variables.

    Bound variables are renamed when they would capture a variable of a
    substituted term.

    >>> from repro.logic.parser import parse_formula
    >>> from repro.logic.printer import format_formula
    >>> phi = parse_formula("exists y. E(x, y)")
    >>> format_formula(substitute(phi, {"x": Var("y")}))
    'exists v0. E(y, v0)'
    """
    if not mapping:
        return formula
    inserted: Set[str] = set()
    for t in mapping.values():
        if isinstance(t, Var):
            inserted.add(t.name)
    return _subst(formula, dict(mapping), inserted)


def _subst(
    formula: Formula, mapping: Dict[str, Term], inserted: Set[str]
) -> Formula:
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.name, tuple(_subst_term(t, mapping) for t in formula.terms)
        )
    if isinstance(formula, Equals):
        return Equals(
            _subst_term(formula.left, mapping), _subst_term(formula.right, mapping)
        )
    if isinstance(formula, Truth):
        return formula
    if isinstance(formula, Not):
        return Not(_subst(formula.sub, mapping, inserted))
    if isinstance(formula, And):
        return And(tuple(_subst(s, mapping, inserted) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(_subst(s, mapping, inserted) for s in formula.subs))
    if isinstance(formula, (Exists, Forall)):
        var, sub = _rebind_one(formula.var, formula.sub, mapping, inserted)
        node = Exists if isinstance(formula, Exists) else Forall
        return node(var, sub)
    if isinstance(formula, _FixpointBase):
        new_args = tuple(_subst_term(t, mapping) for t in formula.args)
        new_bound, new_body = _rebind_many(
            formula.bound_vars, formula.body, mapping, inserted
        )
        return type(formula)(formula.rel, new_bound, new_body, new_args)
    if isinstance(formula, SOExists):
        return SOExists(
            formula.rel, formula.arity, _subst(formula.body, mapping, inserted)
        )
    raise SyntaxError_(f"unknown formula node {formula!r}")


def _rebind_one(
    var: Var, body: Formula, mapping: Dict[str, Term], inserted: Set[str]
) -> Tuple[Var, Formula]:
    new_vars, new_body = _rebind_many((var,), body, mapping, inserted)
    return new_vars[0], new_body


def _rebind_many(
    bound: Tuple[Var, ...],
    body: Formula,
    mapping: Dict[str, Term],
    inserted: Set[str],
) -> Tuple[Tuple[Var, ...], Formula]:
    """Substitute inside a binder, renaming bound variables on capture."""
    bound_names = {v.name for v in bound}
    inner_mapping = {k: v for k, v in mapping.items() if k not in bound_names}
    needs_rename = [v for v in bound if v.name in inserted]
    if needs_rename and inner_mapping:
        avoid = (
            set(variable_names(body))
            | inserted
            | set(inner_mapping)
            | bound_names
        )
        supply = fresh_names(avoid)
        renaming: Dict[str, Term] = {}
        new_bound = []
        for v in bound:
            if v in needs_rename:
                fresh = Var(next(supply))
                renaming[v.name] = fresh
                new_bound.append(fresh)
            else:
                new_bound.append(v)
        body = substitute(body, renaming)
        inner_mapping = {
            k: v for k, v in mapping.items() if k not in {b.name for b in new_bound}
        }
        return tuple(new_bound), _subst(body, inner_mapping, inserted)
    if not inner_mapping:
        return tuple(bound), body
    return tuple(bound), _subst(body, inner_mapping, inserted)


def substitute_relation(
    formula: Formula, rel: str, params: Tuple[Var, ...], definition: Formula
) -> Formula:
    """Replace free atoms ``rel(t̄)`` by ``definition[params := t̄]``.

    This is the macro-expansion used in the paper's Prop 3.2 reduction, where
    ``φ_n(x)`` is ``φ`` with ``P(x)`` replaced by ``φ_{n-1}(x)``.  Occurrences
    of ``rel`` under a binder for the same name are left alone.
    """
    if isinstance(formula, RelAtom):
        if formula.name != rel:
            return formula
        if len(formula.terms) != len(params):
            raise SyntaxError_(
                f"atom {rel} has {len(formula.terms)} arguments, definition "
                f"has {len(params)} parameters"
            )
        return substitute(
            definition, {p.name: t for p, t in zip(params, formula.terms)}
        )
    if isinstance(formula, (Equals, Truth)):
        return formula
    if isinstance(formula, Not):
        return Not(substitute_relation(formula.sub, rel, params, definition))
    if isinstance(formula, And):
        return And(
            tuple(substitute_relation(s, rel, params, definition) for s in formula.subs)
        )
    if isinstance(formula, Or):
        return Or(
            tuple(substitute_relation(s, rel, params, definition) for s in formula.subs)
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.var, substitute_relation(formula.sub, rel, params, definition)
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.var, substitute_relation(formula.sub, rel, params, definition)
        )
    if isinstance(formula, _FixpointBase):
        if formula.rel == rel:
            return formula
        return type(formula)(
            formula.rel,
            formula.bound_vars,
            substitute_relation(formula.body, rel, params, definition),
            formula.args,
        )
    if isinstance(formula, SOExists):
        if formula.rel == rel:
            return formula
        return SOExists(
            formula.rel,
            formula.arity,
            substitute_relation(formula.body, rel, params, definition),
        )
    raise SyntaxError_(f"unknown formula node {formula!r}")


def rename_relation(formula: Formula, old: str, new: str) -> Formula:
    """Rename every occurrence (free or binding) of relation ``old``.

    Raises if ``new`` already occurs, which would change meaning.
    """
    for node in formula.walk():
        if isinstance(node, RelAtom) and node.name == new:
            raise SyntaxError_(f"relation name {new!r} already used")
        if isinstance(node, (_FixpointBase,)) and node.rel == new:
            raise SyntaxError_(f"relation name {new!r} already bound")
        if isinstance(node, SOExists) and node.rel == new:
            raise SyntaxError_(f"relation name {new!r} already bound")
    return _rename_rel(formula, old, new)


def _rename_rel(formula: Formula, old: str, new: str) -> Formula:
    if isinstance(formula, RelAtom):
        if formula.name == old:
            return RelAtom(new, formula.terms)
        return formula
    if isinstance(formula, (Equals, Truth)):
        return formula
    if isinstance(formula, Not):
        return Not(_rename_rel(formula.sub, old, new))
    if isinstance(formula, And):
        return And(tuple(_rename_rel(s, old, new) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(_rename_rel(s, old, new) for s in formula.subs))
    if isinstance(formula, Exists):
        return Exists(formula.var, _rename_rel(formula.sub, old, new))
    if isinstance(formula, Forall):
        return Forall(formula.var, _rename_rel(formula.sub, old, new))
    if isinstance(formula, _FixpointBase):
        rel = new if formula.rel == old else formula.rel
        return type(formula)(
            rel, formula.bound_vars, _rename_rel(formula.body, old, new), formula.args
        )
    if isinstance(formula, SOExists):
        rel = new if formula.rel == old else formula.rel
        return SOExists(rel, formula.arity, _rename_rel(formula.body, old, new))
    raise SyntaxError_(f"unknown formula node {formula!r}")


def rename_bound_apart(formula: Formula) -> Formula:
    """Rename bound individual variables so no name is bound twice.

    Free variables keep their names.  The result is logically equivalent but
    generally *wider* (uses more variable names) — it is the inverse
    direction of the variable-minimization optimizer.
    """
    supply = fresh_names(variable_names(formula))
    return _apart(formula, {}, supply)


def _apart(
    formula: Formula, renaming: Dict[str, Term], supply: Iterator[str]
) -> Formula:
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.name, tuple(_subst_term(t, renaming) for t in formula.terms)
        )
    if isinstance(formula, Equals):
        return Equals(
            _subst_term(formula.left, renaming),
            _subst_term(formula.right, renaming),
        )
    if isinstance(formula, Truth):
        return formula
    if isinstance(formula, Not):
        return Not(_apart(formula.sub, renaming, supply))
    if isinstance(formula, And):
        return And(tuple(_apart(s, renaming, supply) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(_apart(s, renaming, supply) for s in formula.subs))
    if isinstance(formula, (Exists, Forall)):
        fresh = Var(next(supply))
        inner = dict(renaming)
        inner[formula.var.name] = fresh
        node = Exists if isinstance(formula, Exists) else Forall
        return node(fresh, _apart(formula.sub, inner, supply))
    if isinstance(formula, _FixpointBase):
        fresh_bound = tuple(Var(next(supply)) for _ in formula.bound_vars)
        inner = dict(renaming)
        for old, new in zip(formula.bound_vars, fresh_bound):
            inner[old.name] = new
        return type(formula)(
            formula.rel,
            fresh_bound,
            _apart(formula.body, inner, supply),
            tuple(_subst_term(t, renaming) for t in formula.args),
        )
    if isinstance(formula, SOExists):
        return SOExists(
            formula.rel, formula.arity, _apart(formula.body, renaming, supply)
        )
    raise SyntaxError_(f"unknown formula node {formula!r}")
