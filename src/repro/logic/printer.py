"""Pretty-printer for the concrete formula syntax.

The output is accepted verbatim by :func:`repro.logic.parser.parse_formula`;
``parse(format(φ)) == φ`` is property-tested.  The concrete syntax::

    E(x, y) & ~(x = y) | exists y. P(y)
    forall x. P(x) -> ...                 # printer emits the desugared form
    [lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)
    exists2 S/2. forall x. S(x, x)

Operator precedence, loosest first: quantifiers (maximal scope), ``|``,
``&``, ``~``.  The printed length of a formula is the ``|e|`` used by the
expression-complexity experiments.
"""

from __future__ import annotations

from repro.errors import SyntaxError_
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)

_LEVEL_QUANT = 0
_LEVEL_OR = 1
_LEVEL_AND = 2
_LEVEL_UNARY = 3

_FIXPOINT_KEYWORD = {LFP: "lfp", GFP: "gfp", PFP: "pfp", IFP: "ifp"}


def format_term(term: Term) -> str:
    """Concrete syntax of a term: bare name, integer, or quoted string."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        value = term.value
        if isinstance(value, bool):
            raise SyntaxError_("boolean constants are not printable terms")
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        raise SyntaxError_(f"constant {value!r} has no concrete syntax")
    raise SyntaxError_(f"unknown term {term!r}")


def format_formula(formula: Formula) -> str:
    """Render ``formula`` in the concrete text syntax."""
    return _fmt(formula, _LEVEL_QUANT)


def formula_label(formula: Formula, limit: int = 80) -> str:
    """A clipped one-line rendering, for span attributes and reports.

    The trace/explain layer keys spans to subformulas by this label, so
    the clipping rule must stay deterministic: everything past ``limit``
    characters is replaced by a fixed ellipsis.
    """
    text = format_formula(formula)
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def formula_length(formula: Formula) -> int:
    """``|e|``: the length of the printed expression."""
    return len(format_formula(formula))


def _fmt(formula: Formula, level: int) -> str:
    if isinstance(formula, RelAtom):
        args = ", ".join(format_term(t) for t in formula.terms)
        return f"{formula.name}({args})"
    if isinstance(formula, Equals):
        text = f"{format_term(formula.left)} = {format_term(formula.right)}"
        return f"({text})" if level >= _LEVEL_UNARY else text
    if isinstance(formula, Truth):
        return "true" if formula.value else "false"
    if isinstance(formula, Not):
        return f"~{_fmt(formula.sub, _LEVEL_UNARY)}"
    if isinstance(formula, And):
        if not formula.subs:
            return "true"
        text = " & ".join(_fmt(s, _LEVEL_UNARY) for s in formula.subs)
        return f"({text})" if level > _LEVEL_AND else text
    if isinstance(formula, Or):
        if not formula.subs:
            return "false"
        text = " | ".join(_fmt(s, _LEVEL_AND) for s in formula.subs)
        return f"({text})" if level > _LEVEL_OR else text
    if isinstance(formula, (Exists, Forall)):
        keyword = "exists" if isinstance(formula, Exists) else "forall"
        text = f"{keyword} {formula.var.name}. {_fmt(formula.sub, _LEVEL_QUANT)}"
        return f"({text})" if level > _LEVEL_QUANT else text
    if isinstance(formula, _FixpointBase):
        keyword = _FIXPOINT_KEYWORD[type(formula)]
        bound = ", ".join(v.name for v in formula.bound_vars)
        args = ", ".join(format_term(t) for t in formula.args)
        body = _fmt(formula.body, _LEVEL_QUANT)
        return f"[{keyword} {formula.rel}({bound}). {body}]({args})"
    if isinstance(formula, SOExists):
        text = (
            f"exists2 {formula.rel}/{formula.arity}. "
            f"{_fmt(formula.body, _LEVEL_QUANT)}"
        )
        return f"({text})" if level > _LEVEL_QUANT else text
    raise SyntaxError_(f"unknown formula node {formula!r}")
