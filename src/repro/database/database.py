"""The relational database instance ``B = (D, R_1, ..., R_l)``.

This is the central data object of Section 2.1: a finite domain plus named
relations over it.  Relations and the domain are immutable values;
"updates" either build new databases (:meth:`Database.with_relation`) or
— for long-lived *registered* databases behind the :mod:`repro.serve`
query service — go through the fact-mutation hooks
(:meth:`Database.add_fact` / :meth:`Database.remove_fact`), which swap in
a fresh immutable relation and bump a monotone ``generation`` counter.
Caches key on that counter, so a mutated database can never serve stale
cached rows (see :class:`repro.perf.cache.SubqueryCache`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.database.domain import Domain, Value
from repro.database.relation import Relation
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import SchemaError


class Database:
    """An immutable relational database instance.

    >>> b = Database(Domain([3, 5, 7]), {"E": Relation(2, [(3, 5), (5, 7)])})
    >>> b.relation("E").arity
    2
    >>> b.size()
    3

    Every tuple of every relation must lie within the domain; this invariant
    is checked at construction time so downstream evaluators can rely on it.
    """

    __slots__ = ("_domain", "_relations", "_schema", "_generation")

    def __init__(self, domain: Domain, relations: Mapping[str, Relation]):
        self._domain = domain
        rels: Dict[str, Relation] = dict(relations)
        for name, rel in rels.items():
            for t in rel.tuples:
                for v in t:
                    if v not in domain:
                        raise SchemaError(
                            f"relation {name!r} contains value {v!r} "
                            f"outside the domain"
                        )
        self._relations = rels
        self._schema = DatabaseSchema(
            RelationSchema(name, rel.arity) for name, rel in rels.items()
        )
        self._generation = 0

    @classmethod
    def from_tuples(
        cls,
        domain: Iterable[Value],
        relations: Mapping[str, Tuple[int, Iterable[Sequence[Value]]]],
    ) -> "Database":
        """Convenience constructor from plain Python data.

        ``relations`` maps each name to a ``(arity, tuples)`` pair.

        >>> b = Database.from_tuples([0, 1, 2], {"E": (2, [(0, 1), (1, 2)])})
        >>> len(b.relation("E"))
        2
        """
        dom = Domain(domain)
        rels = {
            name: Relation(arity, tuples)
            for name, (arity, tuples) in relations.items()
        }
        return cls(dom, rels)

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def size(self) -> int:
        """Number of domain elements ``n`` — the data-complexity parameter."""
        return len(self._domain)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A new database with ``name`` bound (or rebound) to ``relation``.

        Used by evaluators to push fixpoint/second-order relation values into
        the structure without mutating the original database.
        """
        updated = dict(self._relations)
        updated[name] = relation
        return Database(self._domain, updated)

    def without_relation(self, name: str) -> "Database":
        """A new database with ``name`` removed."""
        if name not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        remaining = {k: v for k, v in self._relations.items() if k != name}
        return Database(self._domain, remaining)

    @property
    def generation(self) -> int:
        """Monotone mutation counter, bumped by every applied fact change.

        Cache keys embed it (:meth:`repro.perf.cache.SubqueryCache.key_for`)
        so entries computed against an earlier state of this database
        object become unreachable the moment it mutates.
        """
        return self._generation

    def add_fact(self, name: str, values: Sequence["Value"]) -> bool:
        """Add one tuple to relation ``name`` in place.

        The mutation hook for registered databases: validates the tuple
        against the domain and the relation's arity, swaps in a fresh
        immutable :class:`~repro.database.relation.Relation`, and bumps
        :attr:`generation` when the fact was actually new.  Returns
        whether the database changed.
        """
        rel = self.relation(name)
        fact = tuple(values)
        if len(fact) != rel.arity:
            raise SchemaError(
                f"fact {fact!r} has length {len(fact)}, relation {name!r} "
                f"has arity {rel.arity}"
            )
        for v in fact:
            if v not in self._domain:
                raise SchemaError(
                    f"fact value {v!r} is outside the domain"
                )
        if fact in rel:
            return False
        self._relations[name] = Relation(rel.arity, rel.tuples | {fact})
        self._generation += 1
        return True

    def remove_fact(self, name: str, values: Sequence["Value"]) -> bool:
        """Remove one tuple from relation ``name`` in place.

        The counterpart of :meth:`add_fact`; removing an absent fact is a
        no-op that leaves :attr:`generation` untouched.  Returns whether
        the database changed.
        """
        rel = self.relation(name)
        fact = tuple(values)
        if fact not in rel:
            return False
        self._relations[name] = Relation(rel.arity, rel.tuples - {fact})
        self._generation += 1
        return True

    def total_tuples(self) -> int:
        """Total tuple count across relations (a size proxy for encodings)."""
        return sum(len(rel) for rel in self._relations.values())

    def is_nontrivial(self) -> bool:
        """Paper footnote 4: at least 2 domain elements and one relation that
        is non-empty and not all of ``D^k``."""
        if len(self._domain) < 2:
            return False
        n = len(self._domain)
        for rel in self._relations.values():
            if rel.arity >= 1 and rel and len(rel) < n**rel.arity:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._domain == other._domain and self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self._domain, tuple(sorted(self._relations.items()))))

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}/{rel.arity}[{len(rel)}]" for name, rel in self._relations.items()
        )
        return f"Database(n={len(self._domain)}, {rels})"
