"""Finite relational databases (Section 2.1 of the paper).

A database is a finite domain of values together with a collection of named,
fixed-arity relations over that domain.  This subpackage provides:

* :class:`~repro.database.domain.Domain` — an explicit finite domain,
* :class:`~repro.database.relation.Relation` — an immutable set of tuples,
* :class:`~repro.database.schema.RelationSchema` /
  :class:`~repro.database.schema.DatabaseSchema` — arity declarations,
* :class:`~repro.database.database.Database` — the instance itself,
* :mod:`~repro.database.encoding` — the "standard encoding" of Section 2.1
  turned into a concrete, measurable binary string format.
"""

from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.database.database import Database

__all__ = [
    "Domain",
    "Relation",
    "RelationSchema",
    "DatabaseSchema",
    "Database",
]
