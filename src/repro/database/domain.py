"""Finite domains of database values.

The paper fixes domains to be finite sets of natural numbers (Section 2.1:
``D ⊆ IN``).  We keep that convention — values are hashable and, by default,
integers — while allowing any hashable Python value so examples can use
readable strings for employees and departments.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Tuple

from repro.errors import SchemaError

Value = Hashable


class Domain:
    """An explicit finite domain ``D`` of values.

    The domain is stored in a canonical sorted order so iteration, encoding
    and cross products are deterministic across runs.

    >>> d = Domain([3, 5, 7])
    >>> len(d)
    3
    >>> 5 in d
    True
    >>> list(d.tuples(2))[:3]
    [(3, 3), (3, 5), (3, 7)]
    """

    __slots__ = ("_values", "_index", "_value_set")

    def __init__(self, values: Iterable[Value]):
        ordered = _canonical_order(values)
        self._values: Tuple[Value, ...] = ordered
        self._value_set = frozenset(ordered)
        if len(self._value_set) != len(ordered):
            raise SchemaError("domain contains duplicate values")
        self._index = {value: i for i, value in enumerate(ordered)}

    @classmethod
    def range(cls, n: int) -> "Domain":
        """The canonical ``n``-element domain ``{0, 1, ..., n-1}``."""
        if n < 0:
            raise SchemaError(f"domain size must be non-negative, got {n}")
        return cls(range(n))

    @property
    def values(self) -> Tuple[Value, ...]:
        """The domain values in canonical order."""
        return self._values

    def index_of(self, value: Value) -> int:
        """Position of ``value`` in the canonical order (for encodings)."""
        try:
            return self._index[value]
        except KeyError:
            raise SchemaError(f"value {value!r} not in domain") from None

    def tuples(self, arity: int) -> Iterator[Tuple[Value, ...]]:
        """All ``arity``-tuples over the domain, in lexicographic order.

        This is the ``D^k`` the bounded-variable languages quantify over;
        callers should treat it as a stream — it has ``n**arity`` elements.
        """
        if arity < 0:
            raise SchemaError(f"arity must be non-negative, got {arity}")
        return itertools.product(self._values, repeat=arity)

    def __contains__(self, value: object) -> bool:
        return value in self._value_set

    def __iter__(self) -> Iterator[Value]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._value_set == other._value_set

    def __hash__(self) -> int:
        return hash(self._value_set)

    def __repr__(self) -> str:
        if len(self._values) <= 8:
            return f"Domain({list(self._values)!r})"
        head = ", ".join(repr(v) for v in self._values[:6])
        return f"Domain([{head}, ... {len(self._values)} values])"


def _canonical_order(values: Iterable[Value]) -> Tuple[Value, ...]:
    """Sort mixed-type hashable values deterministically.

    Values of one orderable type sort naturally; mixed types fall back to
    sorting by ``(type name, repr)`` which is stable and total.
    """
    materialized = list(values)
    try:
        return tuple(sorted(materialized))
    except TypeError:
        return tuple(sorted(materialized, key=lambda v: (type(v).__name__, repr(v))))
