"""Database schemas: relation names with declared arities.

The paper calls this the "arity" ``a = (a_1, ..., a_l)`` of a database.  We
attach names to the positions because queries refer to relations by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import SchemaError

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def _validate_name(name: str) -> str:
    if not name:
        raise SchemaError("relation name must be non-empty")
    if not set(name) <= _NAME_OK:
        raise SchemaError(f"relation name {name!r} contains illegal characters")
    return name


@dataclass(frozen=True)
class RelationSchema:
    """A single relation symbol: a name and a non-negative arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        _validate_name(self.name)
        if self.arity < 0:
            raise SchemaError(
                f"relation {self.name!r}: arity must be non-negative, got {self.arity}"
            )


class DatabaseSchema:
    """An ordered collection of :class:`RelationSchema` with unique names.

    >>> s = DatabaseSchema([RelationSchema("E", 2), RelationSchema("P", 1)])
    >>> s.arity_of("E")
    2
    >>> list(s.names())
    ['E', 'P']
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema]):
        ordered: Dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in ordered:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            ordered[rel.name] = rel
        self._relations: Dict[str, RelationSchema] = ordered

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "DatabaseSchema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSchema(name, ar) for name, ar in arities.items())

    def arity_of(self, name: str) -> int:
        try:
            return self._relations[name].arity
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def names(self) -> Iterator[str]:
        return iter(self._relations)

    def arities(self) -> Tuple[int, ...]:
        """The arity vector ``(a_1, ..., a_l)`` in declaration order."""
        return tuple(rel.arity for rel in self._relations.values())

    def max_arity(self) -> int:
        return max((rel.arity for rel in self._relations.values()), default=0)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.values()))

    def __repr__(self) -> str:
        body = ", ".join(f"{r.name}/{r.arity}" for r in self._relations.values())
        return f"DatabaseSchema({body})"
