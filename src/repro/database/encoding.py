"""The "standard encoding" of databases as binary strings (Section 2.1).

The paper measures data complexity "as a function of the length of the data",
assuming a standard encoding; its example encodes the database
``({3,5,7}, {<3,5>, <5,7>})`` as ``({011,101,111},{<011,101>,<101,111>})``.
This module makes that encoding concrete and invertible so that input lengths
are real, measurable quantities for the complexity harness.

Format (printable ASCII over the alphabet ``( ) { } < > , 0 1 ; : letters``)::

    db      := '(' domain ( ';' relation )* ')'
    domain  := '{' bits (',' bits)* '}' | '{}'
    relation:= name ':' arity ':' '{' tuple (',' tuple)* '}' | name ':' arity ':' '{}'
    tuple   := '<' bits (',' bits)* '>' | '<>'

where ``bits`` is the value's index in the canonical domain order, written in
binary with exactly ``ceil(log2(n))`` digits (minimum 1).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import SchemaError


def _bit_width(n: int) -> int:
    """Number of binary digits used per value for an ``n``-element domain."""
    if n <= 1:
        return 1
    return (n - 1).bit_length()


def encode_value(index: int, width: int) -> str:
    """Binary encoding of a domain index with a fixed digit width."""
    if index < 0 or index >= 2**width:
        raise SchemaError(f"index {index} does not fit in {width} bits")
    return format(index, f"0{width}b")


def encode_database(db: Database) -> str:
    """Serialize a database to its standard-encoding string.

    The length of this string is the ``|B|`` that data and combined
    complexity are measured against.
    """
    n = db.size()
    width = _bit_width(n)
    dom = db.domain
    domain_part = "{" + ",".join(
        encode_value(i, width) for i in range(n)
    ) + "}"
    parts: List[str] = [domain_part]
    for name in db.relation_names():
        rel = db.relation(name)
        tuples = sorted(
            tuple(dom.index_of(v) for v in t) for t in rel.tuples
        )
        body = ",".join(
            "<" + ",".join(encode_value(i, width) for i in t) + ">"
            for t in tuples
        )
        parts.append(f"{name}:{rel.arity}:{{{body}}}")
    return "(" + ";".join(parts) + ")"


def encoded_length(db: Database) -> int:
    """``|B|``: the length of the standard encoding of ``db``."""
    return len(encode_database(db))


def decode_database(text: str) -> Database:
    """Inverse of :func:`encode_database`.

    Decoded domains are always ``{0, ..., n-1}`` — the encoding identifies
    values with their canonical indices, exactly as the paper's bit strings
    do.  ``decode(encode(db))`` is therefore ``db`` up to the canonical
    renaming of domain values.
    """
    parser = _Parser(text)
    db = parser.parse_db()
    parser.expect_end()
    return db


class _Parser:
    """Tiny recursive-descent parser for the standard encoding."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def parse_db(self) -> Database:
        self._expect("(")
        indices = self._parse_domain()
        n = len(indices)
        if sorted(indices) != list(range(n)):
            raise SchemaError("domain encoding is not 0..n-1")
        relations = {}
        while self._peek() == ";":
            self._expect(";")
            name, rel = self._parse_relation(n)
            if name in relations:
                raise SchemaError(f"duplicate relation {name!r} in encoding")
            relations[name] = rel
        self._expect(")")
        return Database(Domain.range(n), relations)

    def expect_end(self) -> None:
        if self._pos != len(self._text):
            raise SchemaError(
                f"trailing characters at position {self._pos}: "
                f"{self._text[self._pos:self._pos + 10]!r}"
            )

    def _parse_domain(self) -> List[int]:
        self._expect("{")
        indices: List[int] = []
        if self._peek() != "}":
            indices.append(self._parse_bits())
            while self._peek() == ",":
                self._expect(",")
                indices.append(self._parse_bits())
        self._expect("}")
        return indices

    def _parse_relation(self, n: int) -> Tuple[str, Relation]:
        name = self._parse_name()
        self._expect(":")
        arity = self._parse_int()
        self._expect(":")
        self._expect("{")
        tuples = []
        if self._peek() != "}":
            tuples.append(self._parse_tuple(n))
            while self._peek() == ",":
                self._expect(",")
                tuples.append(self._parse_tuple(n))
        self._expect("}")
        return name, Relation(arity, tuples)

    def _parse_tuple(self, n: int) -> Tuple[int, ...]:
        self._expect("<")
        values: List[int] = []
        if self._peek() != ">":
            values.append(self._parse_bits())
            while self._peek() == ",":
                self._expect(",")
                values.append(self._parse_bits())
        self._expect(">")
        for v in values:
            if v >= n:
                raise SchemaError(f"tuple value index {v} out of domain range {n}")
        return tuple(values)

    def _parse_bits(self) -> int:
        start = self._pos
        while self._peek() in ("0", "1"):
            self._pos += 1
        if self._pos == start:
            raise SchemaError(f"expected bits at position {start}")
        return int(self._text[start:self._pos], 2)

    def _parse_int(self) -> int:
        start = self._pos
        while self._peek().isdigit():
            self._pos += 1
        if self._pos == start:
            raise SchemaError(f"expected integer at position {start}")
        return int(self._text[start:self._pos])

    def _parse_name(self) -> str:
        start = self._pos
        while self._peek().isalnum() or self._peek() in ("_", "-"):
            self._pos += 1
        if self._pos == start:
            raise SchemaError(f"expected relation name at position {start}")
        return self._text[start:self._pos]

    def _peek(self) -> str:
        if self._pos >= len(self._text):
            return ""
        return self._text[self._pos]

    def _expect(self, ch: str) -> None:
        if self._peek() != ch:
            raise SchemaError(
                f"expected {ch!r} at position {self._pos}, "
                f"found {self._peek()!r}"
            )
        self._pos += 1
