"""Immutable fixed-arity relations.

A :class:`Relation` is a finite set of equal-length tuples.  It is the value
of a database relation symbol and also the result type of query evaluation
(``Q(B) ⊆ D^b`` in the paper's notation).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.database.domain import Value
from repro.errors import SchemaError

TupleOfValues = Tuple[Value, ...]


class Relation:
    """An immutable ``arity``-ary relation: a frozen set of value tuples.

    The arity must be given explicitly so that the empty relation of arity 3
    is distinguishable from the empty relation of arity 2 — the distinction
    matters for complementation and for schema checking.

    >>> r = Relation(2, [(1, 2), (2, 3)])
    >>> (1, 2) in r
    True
    >>> len(r)
    2
    """

    __slots__ = ("_arity", "_tuples")

    def __init__(self, arity: int, tuples: Iterable[Sequence[Value]] = ()):
        if arity < 0:
            raise SchemaError(f"arity must be non-negative, got {arity}")
        self._arity = arity
        frozen = frozenset(tuple(t) for t in tuples)
        for t in frozen:
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t!r} has length {len(t)}, expected arity {arity}"
                )
        self._tuples: FrozenSet[TupleOfValues] = frozen

    @classmethod
    def empty(cls, arity: int) -> "Relation":
        """The empty relation of the given arity."""
        return cls(arity, ())

    @classmethod
    def nullary(cls, truth: bool) -> "Relation":
        """A 0-ary relation: ``{()}`` for true, ``{}`` for false.

        Nullary relations are how Boolean query answers are represented: a
        sentence's answer is either the empty 0-tuple set or the singleton.
        """
        return cls(0, [()] if truth else [])

    @property
    def arity(self) -> int:
        """Number of columns."""
        return self._arity

    @property
    def tuples(self) -> FrozenSet[TupleOfValues]:
        """The underlying frozen set of tuples."""
        return self._tuples

    def as_bool(self) -> bool:
        """Interpret a 0-ary relation as a Boolean answer."""
        if self._arity != 0:
            raise SchemaError(
                f"as_bool() requires arity 0, relation has arity {self._arity}"
            )
        return bool(self._tuples)

    def union(self, other: "Relation") -> "Relation":
        self._check_same_arity(other, "union")
        return Relation(self._arity, self._tuples | other._tuples)

    def intersection(self, other: "Relation") -> "Relation":
        self._check_same_arity(other, "intersection")
        return Relation(self._arity, self._tuples & other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        self._check_same_arity(other, "difference")
        return Relation(self._arity, self._tuples - other._tuples)

    def issubset(self, other: "Relation") -> bool:
        self._check_same_arity(other, "issubset")
        return self._tuples <= other._tuples

    def project(self, columns: Sequence[int]) -> "Relation":
        """Project onto (and reorder by) the given 0-based column indices."""
        for c in columns:
            if not 0 <= c < self._arity:
                raise SchemaError(
                    f"projection column {c} out of range for arity {self._arity}"
                )
        cols = tuple(columns)
        return Relation(
            len(cols), {tuple(t[c] for c in cols) for t in self._tuples}
        )

    def state_key(self) -> object:
        """A cheap hashable proxy for this relation's identity.

        Fixpoint seen-sets and subquery-cache fingerprints key on this
        instead of the relation itself, so a representation that can
        identify itself without hashing its tuple set (see
        :class:`repro.kernel.packed.PackedRelation`) may return a
        compact token.  The default is the relation itself: equal
        relations must produce equal keys, and keys from different
        representations of the same domain must not collide.
        """
        return self

    def _check_same_arity(self, other: "Relation", op: str) -> None:
        if self._arity != other._arity:
            raise SchemaError(
                f"{op} requires equal arities, got {self._arity} and {other._arity}"
            )

    def __contains__(self, item: object) -> bool:
        return item in self._tuples

    def __iter__(self) -> Iterator[TupleOfValues]:
        return iter(sorted(self._tuples, key=repr))

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._arity == other._arity and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._arity, self._tuples))

    def __repr__(self) -> str:
        shown = sorted(self._tuples, key=repr)[:4]
        suffix = ", ..." if len(self._tuples) > 4 else ""
        body = ", ".join(repr(t) for t in shown)
        return f"Relation(arity={self._arity}, {{{body}{suffix}}} /{len(self)})"
