"""The Lemma 4.2 grammar: FO^k over a fixed database as a parenthesis language.

For a fixed database ``B`` with domain ``D`` there are only ``2^(|D|^k)``
k-ary relations ``r_0, ..., r_{l-1}``.  Viewing each subformula of an
FO^k query as a subquery whose value is one of these relations, an
expression is a word of a parenthesis grammar with one nonterminal
``A_i`` per relation:

* ``A_i → ( a )``       for each atomic formula token ``a`` of value r_i
* ``A_i → ( A_j & A_m )``  whenever ``r_i = r_j ∩ r_m``
* ``A_i → ( ~ A_j )``      whenever ``r_i = D^k \\ r_j``
* ``A_i → ( 9x_j A_m )``   whenever ``r_i`` is ``r_m`` with coordinate j
  projected out and re-cylindrified
* ``S  → ( A_i @ t_i )``   — the word ``( enc(φ) @ t_i )`` is in the
  language exactly when the value of ``φ`` on ``B`` is ``r_i``.

The grammar is *fixed once B is fixed*; recognizing a query expression is
then a single linear pass (Theorem 4.1 / Theorem 4.4's ALOGTIME, observed
sequentially).  This module builds ``G(B)``, encodes formulas as token
sequences, and exposes the reduction from ``Answer_{FO^k}(B)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.database.database import Database
from repro.errors import ReductionError
from repro.grammar.cfg import CLOSE, OPEN, Grammar, Production
from repro.grammar.recognizer import recognize_parenthesis
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Formula,
    Not,
    RelAtom,
    Var,
)

KRelation = FrozenSet[Tuple[object, ...]]


def _all_k_relations(domain: Tuple[object, ...], k: int) -> List[KRelation]:
    """Every k-ary relation over the domain, in a canonical order."""
    universe = sorted(itertools.product(domain, repeat=k), key=repr)
    relations: List[KRelation] = []
    for mask in range(1 << len(universe)):
        relations.append(
            frozenset(
                universe[i] for i in range(len(universe)) if mask >> i & 1
            )
        )
    return relations


@dataclass(frozen=True)
class FixedDatabaseGrammar:
    """``G(B)`` plus the metadata needed to run the reduction."""

    grammar: Grammar
    db: Database
    k: int
    relations: Tuple[KRelation, ...]          # index → relation value
    atom_tokens: Dict[str, int]               # atom token → relation index

    def relation_index(self, relation: KRelation) -> int:
        try:
            return self.relations.index(frozenset(relation))
        except ValueError:
            raise ReductionError("relation not over this domain/arity") from None

    def value_token(self, index: int) -> str:
        return f"r{index}"

    def word_for(self, formula: Formula, claimed_index: int) -> List[str]:
        """The input word ``( enc(φ) @ r_i )`` of the reduction."""
        return (
            [OPEN]
            + encode_formula(formula, self.k)
            + ["@", self.value_token(claimed_index), CLOSE]
        )

    def accepts(self, formula: Formula, claimed_index: int) -> bool:
        """Is ``( enc(φ) @ r_i )`` in ``L(G(B))``?"""
        return recognize_parenthesis(
            self.grammar, self.word_for(formula, claimed_index)
        )

    def evaluate_via_grammar(self, formula: Formula) -> KRelation:
        """The k-ary value of ``φ`` on B, found through the grammar.

        Tries each claimed relation; exactly one claim is accepted (the
        grammar is a function on well-formed encodings).
        """
        found: Optional[int] = None
        for index in range(len(self.relations)):
            if self.accepts(formula, index):
                if found is not None:
                    raise ReductionError(
                        "grammar accepted two different values — "
                        "construction bug"
                    )
                found = index
        if found is None:
            raise ReductionError("grammar rejected every value claim")
        return self.relations[found]


def variables(k: int) -> Tuple[str, ...]:
    """The fixed variables ``x1 .. xk`` of FO^k."""
    return tuple(f"x{i}" for i in range(1, k + 1))


def encode_formula(formula: Formula, k: int) -> List[str]:
    """Encode an FO^k formula (∧/¬/∃ over atoms) as grammar tokens.

    Atoms become single tokens ``"P xi1 ... xim"``; the connective tokens
    are ``&``, ``~``, and ``9xj``; every construct is parenthesized.
    Disjunction and universal quantification are not part of the grammar
    alphabet (the paper's grammar uses the ∧/¬/∃ basis); desugar first.
    """
    names = set(variables(k))
    if isinstance(formula, RelAtom):
        parts = [formula.name]
        for term in formula.terms:
            if not isinstance(term, Var) or term.name not in names:
                raise ReductionError(
                    f"atoms must use variables x1..x{k}, got {term!r}"
                )
            parts.append(term.name)
        return [OPEN, " ".join(parts), CLOSE]
    if isinstance(formula, Equals):
        left, right = formula.left, formula.right
        if (
            not isinstance(left, Var)
            or not isinstance(right, Var)
            or left.name not in names
            or right.name not in names
        ):
            raise ReductionError("equalities must relate variables x1..xk")
        return [OPEN, f"= {left.name} {right.name}", CLOSE]
    if isinstance(formula, Not):
        return [OPEN, "~"] + encode_formula(formula.sub, k) + [CLOSE]
    if isinstance(formula, And):
        if len(formula.subs) != 2:
            raise ReductionError(
                "the grammar encoding uses binary conjunction; rebuild "
                "the formula with nested binary ∧"
            )
        return (
            [OPEN]
            + encode_formula(formula.subs[0], k)
            + ["&"]
            + encode_formula(formula.subs[1], k)
            + [CLOSE]
        )
    if isinstance(formula, Exists):
        if formula.var.name not in names:
            raise ReductionError(
                f"quantified variable {formula.var.name!r} outside x1..x{k}"
            )
        return (
            [OPEN, f"9{formula.var.name}"]
            + encode_formula(formula.sub, k)
            + [CLOSE]
        )
    raise ReductionError(
        f"the grammar encoding covers ∧/¬/∃ over atoms; got "
        f"{type(formula).__name__} (desugar ∨ and ∀ first)"
    )


def build_fo_grammar(db: Database, k: int, max_relations: int = 4096) -> FixedDatabaseGrammar:
    """Construct ``G(B)`` for the fixed database ``db`` and bound ``k``.

    The construction enumerates all ``2^(n^k)`` k-ary relations, so it is
    only feasible for tiny fixed databases — which is the point: ``B`` is
    fixed, the queries vary.
    """
    domain = tuple(db.domain.values)
    n = len(domain)
    count = 1 << (n**k)
    if count > max_relations:
        raise ReductionError(
            f"G(B) would have {count} nonterminals (n={n}, k={k}); the "
            f"construction is for fixed tiny databases "
            f"(limit {max_relations})"
        )
    relations = _all_k_relations(domain, k)
    index_of: Dict[KRelation, int] = {r: i for i, r in enumerate(relations)}
    names = variables(k)
    universe = list(itertools.product(domain, repeat=k))

    def nt(i: int) -> str:
        return f"A{i}"

    productions: List[Production] = []
    atom_tokens: Dict[str, int] = {}

    # atomic formula tokens: database atoms over all variable patterns
    for rel_name in db.relation_names():
        relation = db.relation(rel_name)
        for pattern in itertools.product(names, repeat=relation.arity):
            token = " ".join([rel_name] + list(pattern))
            positions = [names.index(v) for v in pattern]
            value = frozenset(
                t
                for t in universe
                if tuple(t[p] for p in positions) in relation
            )
            atom_tokens[token] = index_of[value]
            productions.append(
                Production(nt(index_of[value]), (OPEN, token, CLOSE))
            )
    # equality atoms
    for a in names:
        for b in names:
            token = f"= {a} {b}"
            ia, ib = names.index(a), names.index(b)
            value = frozenset(t for t in universe if t[ia] == t[ib])
            atom_tokens[token] = index_of[value]
            productions.append(
                Production(nt(index_of[value]), (OPEN, token, CLOSE))
            )
    # conjunction: A_i → ( A_j & A_m ) when r_i = r_j ∩ r_m
    for j, rj in enumerate(relations):
        for m, rm in enumerate(relations):
            i = index_of[rj & rm]
            productions.append(
                Production(nt(i), (OPEN, nt(j), "&", nt(m), CLOSE))
            )
    # negation: A_i → ( ~ A_j ) when r_i = D^k \ r_j
    full = frozenset(universe)
    for j, rj in enumerate(relations):
        i = index_of[full - rj]
        productions.append(Production(nt(i), (OPEN, "~", nt(j), CLOSE)))
    # projection: A_i → ( 9xj A_m )
    for var_index, var in enumerate(names):
        for m, rm in enumerate(relations):
            projected = frozenset(
                t
                for t in universe
                if any(
                    t[:var_index] + (d,) + t[var_index + 1:] in rm
                    for d in domain
                )
            )
            productions.append(
                Production(
                    nt(index_of[projected]), (OPEN, f"9{var}", nt(m), CLOSE)
                )
            )
    # start: S → ( A_i @ r_i )
    for i in range(len(relations)):
        productions.append(
            Production("S", (OPEN, nt(i), "@", f"r{i}", CLOSE))
        )
    nonterminals = frozenset([nt(i) for i in range(len(relations))] + ["S"])
    grammar = Grammar(nonterminals, tuple(productions), "S")
    return FixedDatabaseGrammar(
        grammar=grammar,
        db=db,
        k=k,
        relations=tuple(relations),
        atom_tokens=atom_tokens,
    )
