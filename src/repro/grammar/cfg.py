"""Context-free grammars over token alphabets.

Symbols are strings; a symbol is a nonterminal iff it is declared in the
grammar's nonterminal set, otherwise it is a terminal.  Inputs are token
*sequences* (not character strings) — the Lemma 4.2 encoding treats each
atomic formula as one token.

A *parenthesis grammar* [Lyn77] distinguishes terminals ``(`` and ``)``
and requires every production to have the form ``A → ( x )`` with ``x``
parenthesis-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.errors import ReproError

OPEN = "("
CLOSE = ")"


class GrammarError(ReproError):
    """Malformed grammar or input."""


@dataclass(frozen=True)
class Production:
    """``lhs → rhs`` with ``rhs`` a tuple of symbols."""

    lhs: str
    rhs: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rhs", tuple(self.rhs))
        if not self.lhs:
            raise GrammarError("production needs a left-hand side")


@dataclass(frozen=True)
class Grammar:
    """A CFG: nonterminals, productions, and a start symbol."""

    nonterminals: FrozenSet[str]
    productions: Tuple[Production, ...]
    start: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "nonterminals", frozenset(self.nonterminals))
        object.__setattr__(self, "productions", tuple(self.productions))
        if self.start not in self.nonterminals:
            raise GrammarError(
                f"start symbol {self.start!r} is not a nonterminal"
            )
        for production in self.productions:
            if production.lhs not in self.nonterminals:
                raise GrammarError(
                    f"production head {production.lhs!r} is not a nonterminal"
                )

    def is_terminal(self, symbol: str) -> bool:
        return symbol not in self.nonterminals

    def productions_for(self, lhs: str) -> List[Production]:
        return [p for p in self.productions if p.lhs == lhs]

    def size(self) -> int:
        """Total symbols across productions — the grammar's |G|."""
        return sum(1 + len(p.rhs) for p in self.productions)


def is_parenthesis_grammar(grammar: Grammar) -> bool:
    """Every production is ``A → ( x )`` with parenthesis-free ``x``."""
    if OPEN in grammar.nonterminals or CLOSE in grammar.nonterminals:
        return False
    for production in grammar.productions:
        rhs = production.rhs
        if len(rhs) < 2 or rhs[0] != OPEN or rhs[-1] != CLOSE:
            return False
        if any(symbol in (OPEN, CLOSE) for symbol in rhs[1:-1]):
            return False
    return True


def check_parenthesis_grammar(grammar: Grammar) -> None:
    if not is_parenthesis_grammar(grammar):
        raise GrammarError("not a parenthesis grammar")
