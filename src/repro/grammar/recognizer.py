"""Single-pass recognition of parenthesis languages.

Lynch proved parenthesis languages recognizable in LOGSPACE and Buss
sharpened that to ALOGTIME; the observable sequential counterpart is a
*single left-to-right pass* with a stack — each input position is pushed
once and reduced once, so recognition is linear time for a fixed grammar.
The recognizer tracks, per reduced position, the *set* of nonterminals
that can derive it, which handles grammars where several nonterminals
share a right-hand side (the Lemma 4.2 grammar never needs this, but the
recognizer is general).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Union

from repro.grammar.cfg import CLOSE, OPEN, Grammar, GrammarError, check_parenthesis_grammar

# stack entries: a raw terminal token, OPEN, or a set of candidate
# nonterminals for an already-reduced segment
_StackItem = Union[str, FrozenSet[str]]


@dataclass
class RecognizerStats:
    """Work accounting: positions scanned and reduction steps taken."""

    tokens_scanned: int = 0
    reductions: int = 0
    max_stack_depth: int = 0


def recognize_parenthesis(
    grammar: Grammar,
    tokens: Sequence[str],
    stats: RecognizerStats = None,
) -> bool:
    """Is ``tokens`` in ``L(grammar)``?  One pass, stack-based.

    Raises :class:`GrammarError` when the grammar is not a parenthesis
    grammar or the input's parentheses are unbalanced.
    """
    check_parenthesis_grammar(grammar)
    if stats is None:
        stats = RecognizerStats()
    # index productions by parenthesis-free interior length for fast match
    by_length: Dict[int, List] = {}
    for production in grammar.productions:
        interior = production.rhs[1:-1]
        by_length.setdefault(len(interior), []).append(
            (production.lhs, interior)
        )
    stack: List[_StackItem] = []
    for token in tokens:
        stats.tokens_scanned += 1
        if token == CLOSE:
            interior: List[_StackItem] = []
            while stack and stack[-1] != OPEN:
                interior.append(stack.pop())
            if not stack:
                raise GrammarError("unbalanced ')' in input")
            stack.pop()  # the matching OPEN
            interior.reverse()
            stats.reductions += 1
            candidates = _match(by_length, interior, grammar)
            if not candidates:
                return False
            stack.append(candidates)
        else:
            stack.append(token)
        if len(stack) > stats.max_stack_depth:
            stats.max_stack_depth = len(stack)
    if len(stack) != 1 or not isinstance(stack[0], frozenset):
        return False
    return grammar.start in stack[0]


def _match(
    by_length: Dict[int, List],
    interior: List[_StackItem],
    grammar: Grammar,
) -> FrozenSet[str]:
    """Nonterminals whose production interior matches the reduced segment."""
    matches = set()
    for lhs, rhs in by_length.get(len(interior), ()):
        ok = True
        for expected, actual in zip(rhs, interior):
            if isinstance(actual, frozenset):
                if grammar.is_terminal(expected) or expected not in actual:
                    ok = False
                    break
            else:
                if expected != actual:
                    ok = False
                    break
        if ok:
            matches.add(lhs)
    return frozenset(matches)
