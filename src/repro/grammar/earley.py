"""An Earley recognizer for arbitrary context-free grammars.

Lemma 4.2's parenthesis recognizer is special-purpose (single pass); this
general ``O(n³)`` recognizer serves as an independent oracle to
cross-validate it, and recognizes non-parenthesis grammars too.
Standard Earley with prediction, scanning, and completion; handles
ε-productions via the usual nullable-completion care (completing items
in the same set until saturation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.grammar.cfg import Grammar


@dataclass(frozen=True)
class _Item:
    """A dotted production with its origin set index."""

    lhs: str
    rhs: Tuple[str, ...]
    dot: int
    origin: int

    def next_symbol(self) -> str:
        return self.rhs[self.dot] if self.dot < len(self.rhs) else ""

    def finished(self) -> bool:
        return self.dot >= len(self.rhs)

    def advanced(self) -> "_Item":
        return _Item(self.lhs, self.rhs, self.dot + 1, self.origin)


def earley_recognize(grammar: Grammar, tokens: Sequence[str]) -> bool:
    """Is ``tokens`` in ``L(grammar)``?"""
    tokens = list(tokens)
    n = len(tokens)
    sets: List[Set[_Item]] = [set() for _ in range(n + 1)]

    def predict(index: int, nonterminal: str) -> List[_Item]:
        return [
            _Item(p.lhs, p.rhs, 0, index)
            for p in grammar.productions
            if p.lhs == nonterminal
        ]

    for item in predict(0, grammar.start):
        sets[0].add(item)
    for i in range(n + 1):
        # saturate set i with predictions and completions
        queue = list(sets[i])
        while queue:
            item = queue.pop()
            if item.finished():
                # completion: advance items waiting for item.lhs at origin
                for waiting in list(sets[item.origin]):
                    if (
                        not waiting.finished()
                        and waiting.next_symbol() == item.lhs
                    ):
                        advanced = waiting.advanced()
                        if advanced not in sets[i]:
                            sets[i].add(advanced)
                            queue.append(advanced)
                continue
            symbol = item.next_symbol()
            if symbol in grammar.nonterminals:
                for predicted in predict(i, symbol):
                    if predicted not in sets[i]:
                        sets[i].add(predicted)
                        queue.append(predicted)
                # nullable completion: if the predicted nonterminal has
                # already produced a finished item spanning [i, i], advance
                for done in list(sets[i]):
                    if (
                        done.finished()
                        and done.lhs == symbol
                        and done.origin == i
                    ):
                        advanced = item.advanced()
                        if advanced not in sets[i]:
                            sets[i].add(advanced)
                            queue.append(advanced)
        # scanning into set i+1
        if i < n:
            token = tokens[i]
            for item in sets[i]:
                if (
                    not item.finished()
                    and item.next_symbol() == token
                    and token not in grammar.nonterminals
                ):
                    sets[i + 1].add(item.advanced())
    return any(
        item.finished()
        and item.lhs == grammar.start
        and item.origin == 0
        for item in sets[n]
    )
