"""Parenthesis grammars and the Lemma 4.2 construction (Section 4.1).

For a *fixed* database ``B`` there are only finitely many k-ary relations
over its domain, so an FO^k expression is an algebraic expression over a
finite algebra; Lynch's theorem on parenthesis languages then puts
``Answer_{FO^k}(B)`` in LOGSPACE (and Buss's refinement in ALOGTIME).
This subpackage builds the machinery:

* :mod:`~repro.grammar.cfg` — context-free grammars over token alphabets,
  with the parenthesis-grammar well-formedness check;
* :mod:`~repro.grammar.recognizer` — a single-pass shift-reduce
  recognizer for parenthesis languages (linear in the input for a fixed
  grammar);
* :mod:`~repro.grammar.fo_grammar` — the Lemma 4.2 grammar ``G(B)``: one
  nonterminal per k-ary relation over ``B``'s domain, productions mirroring
  ``∧``, ``¬``, ``∃x_j`` on relation values, plus the reduction from
  FO^k query evaluation over ``B`` to ``L(G(B))`` membership.
"""

from repro.grammar.cfg import Grammar, Production, is_parenthesis_grammar
from repro.grammar.recognizer import recognize_parenthesis
from repro.grammar.earley import earley_recognize
from repro.grammar.fo_grammar import (
    FixedDatabaseGrammar,
    build_fo_grammar,
    encode_formula,
)

__all__ = [
    "Grammar",
    "Production",
    "is_parenthesis_grammar",
    "recognize_parenthesis",
    "earley_recognize",
    "FixedDatabaseGrammar",
    "build_fo_grammar",
    "encode_formula",
]
