"""Performance layer: subquery caching and semi-naive fixpoints.

Both optimizations are off by default and switched on through
:class:`repro.core.engine.EvalOptions` —
``EvalOptions(subquery_cache=True)`` and
``EvalOptions(strategy=FixpointStrategy.SEMINAIVE)`` — so the reference
semantics stay untouched and the differential test harness
(``tests/test_differential.py``) can pit optimized evaluation against
it.  See ``docs/performance.md``.
"""

from repro.perf.cache import SubqueryCache, resolve_subquery_cache
from repro.perf.seminaive import (
    SemiNaiveSolver,
    delta_relation_name,
    differential,
)

__all__ = [
    "SemiNaiveSolver",
    "SubqueryCache",
    "delta_relation_name",
    "differential",
    "resolve_subquery_cache",
]
