"""Performance layer: subquery caching and semi-naive fixpoints.

Both optimizations are off by default and switched on through
:class:`repro.core.engine.EvalOptions` —
``EvalOptions(subquery_cache=True)`` and
``EvalOptions(strategy=FixpointStrategy.SEMINAIVE)`` — so the reference
semantics stay untouched and the differential test harness
(``tests/test_differential.py``) can pit optimized evaluation against
it.  See ``docs/performance.md``.

:mod:`repro.perf.experiments` keeps the speedups honest over time: it
registers deterministic, runnable perf experiments for the
``repro perf`` observatory (run records, committed baselines, the
regression gate — see ``docs/benchmarking.md``).
"""

from repro.perf.cache import SubqueryCache, resolve_subquery_cache
from repro.perf.experiments import (
    EXPERIMENTS,
    ExperimentError,
    PerfExperiment,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.perf.seminaive import (
    SemiNaiveSolver,
    delta_relation_name,
    differential,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentError",
    "PerfExperiment",
    "SemiNaiveSolver",
    "SubqueryCache",
    "delta_relation_name",
    "differential",
    "experiment_ids",
    "get_experiment",
    "resolve_subquery_cache",
    "run_experiment",
]
