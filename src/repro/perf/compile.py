"""Query compilation: fuse ``(formula, schema, backend)`` into straight-line plans.

The bottom-up evaluator (:mod:`repro.core.fo_eval`) re-walks the AST on
every evaluation — for fixpoint queries that means per-node ``isinstance``
dispatch, table wrapper allocation, and memo bookkeeping on *every round*.
This module compiles a pure-FO (sub)formula once into a **straight-line
program**: a flat list of instruction tuples executed by one tight loop,
with all per-node decisions (which operation, which registers, which
alignment shifts, what to charge the guard) resolved at build time.

Two specializations exist, chosen by the evaluation backend:

* **packed** — registers hold raw ``n^k``-bit masks.  Each instruction is
  a closure over pre-resolved :class:`~repro.kernel.packed.DomainCodec`
  kernels (``expand``/``project``/``eq_mask``/``select_value``/``permute``)
  with alignment shift plans precomputed from the schemas, so a fixpoint
  round runs whole-int ops with **no intermediate PackedTable wrappers**
  and no per-node dispatch.  Only the final result is wrapped.
* **sparse** — registers hold :class:`~repro.core.interp.VarTable`
  instances and instructions are generated closures over their methods.

Compilation distinguishes **static** subtrees (no free relation variable
bound in the evaluation environment — typically everything except the
fixpoint recursion relation) from **dynamic** ones.  Static subtrees are
constant-folded at build time into pre-initialized registers; dynamic
nodes become compute instructions.  Two instruction lists are kept:

* the **cold** list replays the guard charges / stats observations of the
  constant-folded work once (matching what the interpreter would have
  charged on its first visit), then runs the dynamic tail;
* the **warm** list models every later visit, where the interpreter's
  per-evaluator memo would have served the static subtrees (a
  ``memo_hits`` bump instead of recomputation).

This makes a compiled evaluation *observationally identical* to the
interpreted one: same answers, same :class:`~repro.core.interp.EvalStats`
counters, same guard row charges in the same order (so budget exhaustion
and chaos fault injection trip at the same points), and — when tracing is
on — the same ``fo.*`` span tree nested under a ``compile.run`` span.

What does **not** compile (``compile_program`` returns ``None`` and the
interpreter runs as before): fixpoint operators and second-order
quantifiers (their *bodies* compile when the fixpoint engine re-enters the
evaluator), empty domains, foreign backend objects, and packed programs
whose predicted width exceeds the backend's mask-bit cap.

Compiled plans are shared through :class:`PlanCache`, keyed like
:class:`repro.perf.cache.SubqueryCache` — structural formula + domain +
backend + the database's :attr:`~repro.database.database.Database.generation`
mutation counter + the state of every statically folded relation — so a
mutated database can never be served a stale plan.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.kernel.backend import PackedBackend, SparseBackend
from repro.kernel.packed import PackedRelation, PackedTable, popcount
from repro.logic.printer import formula_label
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_relation_variables, free_variables
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

#: Environment variable consulted when ``EvalOptions.compile`` is unset.
COMPILE_ENV = "REPRO_COMPILE"

#: Default bound on retained compiled plans.
PLAN_CACHE_MAX_ENTRIES = 256

# Traced instruction opcodes (untraced instructions are dispatched on
# their field shapes instead — see Program.run).
_OP_OPEN = 0
_OP_COMPUTE = 1
_OP_CHARGE = 2
_OP_CLOSE = 3
_OP_MEMO = 4
_OP_SEG = 5
_OP_SEGEND = 6

# Untraced memo-bump marker: fn=None, node=None.
_MEMO_U = (None, -1, None, 0, 0, 0)
_MEMO_T = (_OP_MEMO,)


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name):
        self._name = name

    def __repr__(self):  # pragma: no cover - debug aid
        return self._name


# Untraced segment markers (in the ``fn`` field): a static subtree whose
# replay is skipped when the evaluator's memo already holds the node.
_SEG = _Sentinel("<seg>")
_SEGEND = _Sentinel("<segend>")


def subformula_at(formula: Formula, path: Tuple[int, ...]) -> Formula:
    """Resolve a child-index path against a (structurally equal) formula.

    Plans cached across evaluations store static-subtree *paths* rather
    than node objects: structural equality guarantees the same shape, but
    the per-evaluator memo keys on object identity, so each evaluator
    resolves the paths against its own formula instance.
    """
    node = formula
    for index in path:
        if isinstance(node, (Not, Exists, Forall)):
            node = node.sub
        elif isinstance(node, (And, Or)):
            node = node.subs[index]
        else:  # pragma: no cover - paths only point into these nodes
            raise ValueError(f"bad subformula path {path!r}")
    return node


def resolve_compile(value: Optional[bool] = None) -> bool:
    """Normalize an ``EvalOptions.compile`` value.

    ``None`` consults the ``REPRO_COMPILE`` environment variable (the
    compiled-smoke CI lane sets it to run the whole suite compiled),
    mirroring how ``REPRO_BENCH_BACKEND`` selects the kernel.
    """
    if value is None:
        raw = os.environ.get(COMPILE_ENV, "")
        return raw.strip().lower() in ("1", "true", "yes", "on")
    return bool(value)


class _Uncompilable(Exception):
    """Internal: this formula/backend falls back to the interpreter."""


def _codegen_warm(warm: List[tuple], root_reg: int):
    """Unroll a warm op schedule into one specialized Python function.

    The generic warm loop pays tuple unpacking and branch dispatch on
    every instruction; for the per-round fixpoint bodies that dominate
    compiled evaluation this interpretive overhead is a measurable
    fraction of the round.  Unrolling the (short, fixed) schedule into
    straight-line source — compute closures bound as default-argument
    locals, arities and replay row counts inlined as literals — removes
    it.  Semantics are copied 1:1 from ``Program.run``'s warm loop.
    """
    fns = [op[0] for op in warm]
    lines = ["def _warm_run(regs, slots, rows_of, charge, observe, bump,"]
    defaults = ", ".join(
        "f{}=_fns[{}]".format(i, i) for i, fn in enumerate(fns)
        if fn is not None
    )
    lines.append("              genabled{}):".format(
        ", " + defaults if defaults else ""
    ))
    body = []
    for i, (fn, dst, node, charges, arity, rows) in enumerate(warm):
        if fn is not None:
            body.append("    value = f{}(regs, slots)".format(i))
            body.append("    regs[{}] = value".format(dst))
            body.append("    rows = rows_of(value)")
        elif node is None:
            body.append("    bump('memo_hits')")
            continue
        else:
            body.append("    rows = {}".format(rows))
        for _ in range(2 if charges == 2 else 1):
            body.append("    if genabled:")
            body.append("        charge(rows, node={!r})".format(node))
            body.append("    observe(rows, {})".format(arity))
    body.append("    return regs[{}]".format(root_reg))
    namespace = {"_fns": fns}
    exec("\n".join(lines + body), namespace)
    return namespace["_warm_run"]


class Program:
    """A compiled straight-line evaluation plan.

    Untraced instructions are tuples ``(fn, dst, node, charges, arity,
    rows)``:

    * ``fn`` not ``None`` — a compute: ``regs[dst] = fn(regs, slots)``,
      then charge/observe the result ``charges`` times (2 when the node's
      final fold charge and its wrapper charge coincide);
    * ``fn`` is ``None``, ``node`` set — a constant-fold replay: charge and
      observe the build-time ``rows``/``arity`` (what the interpreter
      would have charged computing the static subtree);
    * both ``None`` — a ``memo_hits`` bump (the interpreter's memo would
      have served this repeated subtree).

    Traced instructions carry explicit span opcodes so the compiled run
    emits the same nested ``fo.*`` span tree as the interpreter, wrapped
    in one ``compile.run`` span.
    """

    __slots__ = (
        "backend_name",
        "schema",
        "init_regs",
        "cold",
        "warm",
        "traced_cold",
        "traced_warm",
        "root_reg",
        "rows_of",
        "meta",
        "label",
        "dynamic",
        "segments",
        "_codec",
        "peak_arity",
        "peak_bits",
        "_warm_fast",
    )

    def __init__(
        self,
        backend_name: str,
        schema: Tuple[str, ...],
        init_regs: List[object],
        cold: List[tuple],
        warm: List[tuple],
        traced_cold: List[tuple],
        traced_warm: List[tuple],
        root_reg: int,
        rows_of,
        meta: List[dict],
        label: str,
        dynamic: FrozenSet[str],
        segments: Optional[List[tuple]] = None,
        codec=None,
        peak_arity: int = 0,
        peak_bits: Optional[int] = None,
    ):
        self.backend_name = backend_name
        self.schema = schema
        self.init_regs = init_regs
        self.cold = cold
        self.warm = warm
        self.traced_cold = traced_cold
        self.traced_warm = traced_warm
        self.root_reg = root_reg
        self.rows_of = rows_of
        self.meta = meta
        self.label = label
        self.dynamic = dynamic
        self.segments = segments if segments is not None else []
        self._codec = codec
        self.peak_arity = peak_arity
        self.peak_bits = peak_bits
        self._warm_fast = None

    # -- execution -----------------------------------------------------

    def run(self, slots, stats, guard, warm: bool, memo=None, nodes=None,
            tracer=NULL_TRACER):
        """Execute without tracing; returns the raw root value.

        ``memo``/``nodes`` matter only on the cold run: each static
        *segment* consults the evaluator's per-run memo (``nodes`` are
        the segment subtrees resolved against the caller's formula
        instance) — already-seen subtrees skip their replay with a
        ``memo_hits`` bump, and replayed ones register their folded
        value, exactly as the interpreter's first visit would.  Delta
        bodies produced by semi-naive rewriting *share* subtree objects
        with the original body, so this cross-program memo traffic is
        what keeps compiled counters identical to interpreted ones.
        """
        regs = list(self.init_regs)
        rows_of = self.rows_of
        genabled = guard.enabled
        charge = guard.charge_rows
        observe = stats.observe_rows
        bump = stats.bump
        if warm:
            fast = self._warm_fast
            if fast is None:
                fast = self._warm_fast = _codegen_warm(
                    self.warm, self.root_reg
                )
            return fast(regs, slots, rows_of, charge, observe, bump,
                        genabled)
        if memo is None:
            memo = {}
        ops = self.cold
        i = 0
        n = len(ops)
        while i < n:
            fn, dst, node, charges, arity, rows = ops[i]
            i += 1
            if fn is not None:
                if fn is _SEG:
                    # dst = segment ordinal, charges = instructions to skip
                    if (id(nodes[dst]), ()) in memo:
                        bump("memo_hits")
                        i += charges
                    continue
                if fn is _SEGEND:
                    seg_node = nodes[dst]
                    _, reg, schema = self.segments[dst]
                    memo[(id(seg_node), ())] = (
                        seg_node,
                        self.wrap_value(regs[reg], schema, tracer),
                    )
                    continue
                value = fn(regs, slots)
                regs[dst] = value
                rows = rows_of(value)
            elif node is None:
                bump("memo_hits")
                continue
            if genabled:
                charge(rows, node=node)
            observe(rows, arity)
            if charges == 2:
                if genabled:
                    charge(rows, node=node)
                observe(rows, arity)
        return regs[self.root_reg]

    def run_traced(self, slots, stats, guard, tracer, warm: bool,
                   memo=None, nodes=None):
        """Execute with the interpreter-equivalent ``fo.*`` span tree."""
        regs = list(self.init_regs)
        rows_of = self.rows_of
        genabled = guard.enabled
        observe = stats.observe_rows
        ops = self.traced_warm if warm else self.traced_cold
        if memo is None:
            memo = {}
        stack: List[object] = []
        run_span = tracer._open("compile.run")
        run_span.set(ops=len(ops), warm=warm, backend=self.backend_name)
        try:
            i = 0
            n = len(ops)
            while i < n:
                entry = ops[i]
                i += 1
                op = entry[0]
                if op == _OP_COMPUTE:
                    regs[entry[1]] = entry[2](regs, slots)
                elif op == _OP_CHARGE:
                    _, reg, node, arity, rows = entry
                    if reg >= 0:
                        rows = rows_of(regs[reg])
                    if genabled:
                        guard.charge_rows(rows, node=node)
                    observe(rows, arity)
                elif op == _OP_OPEN:
                    span = tracer._open(entry[1])
                    span.set(expr=entry[2])
                    stack.append(span)
                elif op == _OP_CLOSE:
                    _, reg, arity, rows = entry
                    if reg >= 0:
                        rows = rows_of(regs[reg])
                    span = stack.pop()
                    span.set(rows=rows, arity=arity)
                    tracer._close(span)
                elif op == _OP_SEG:
                    if (id(nodes[entry[1]]), ()) in memo:
                        stats.bump("memo_hits")
                        i += entry[2]
                elif op == _OP_SEGEND:
                    seg_node = nodes[entry[1]]
                    _, reg, schema = self.segments[entry[1]]
                    memo[(id(seg_node), ())] = (
                        seg_node,
                        self.wrap_value(regs[reg], schema, tracer),
                    )
                else:  # _OP_MEMO
                    stats.bump("memo_hits")
        finally:
            # a guard/chaos abort mid-program must not leak open spans
            while stack:
                tracer._close(stack.pop())
            tracer._close(run_span)
        return regs[self.root_reg]

    def wrap(self, value, tracer):
        """Lift the raw root value back into the evaluator's table type."""
        return self.wrap_value(value, self.schema, tracer)

    def wrap_value(self, value, schema, tracer):
        """Lift any register value into the evaluator's table type."""
        if self._codec is not None:
            return PackedTable(self._codec, schema, value, tracer)
        return value

    # -- introspection -------------------------------------------------

    def describe(self) -> str:
        """A human-readable op listing for ``--explain-plan``."""
        lines = [
            f"compiled plan [{self.backend_name}] for {self.label}",
            f"  schema: ({', '.join(self.schema)})"
            if self.schema
            else "  schema: ()  (boolean)",
            f"  dynamic relations: "
            f"{', '.join(sorted(self.dynamic)) if self.dynamic else '(none)'}",
            f"  registers: {len(self.init_regs)}  "
            f"cold ops: {len(self.cold)}  warm ops: {len(self.warm)}",
        ]
        peak = f"  peak intermediate arity: {self.peak_arity}"
        if self.peak_bits is not None:
            peak += f"  (predicted packed width: {self.peak_bits} bits)"
        lines.append(peak)
        for i, op in enumerate(self.meta):
            bits = (
                f" width={op['bits']}b" if op.get("bits") is not None else ""
            )
            lines.append(
                f"  [{i:3d}] {op['kind']:<12} {op['node']:<8} "
                f"arity={op['arity']}{bits}  {op['label']}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Program(backend={self.backend_name!r}, regs={len(self.init_regs)}, "
            f"cold={len(self.cold)}, warm={len(self.warm)})"
        )


# -- backend-specific emitters ----------------------------------------


def _equals_table(backend, domain: Domain, node: Equals):
    """Mirror of ``BoundedEvaluator._eval_equals`` over any backend."""
    left, right = node.left, node.right
    if isinstance(left, Var) and isinstance(right, Var):
        if left.name == right.name:
            return backend.full((left.name,))
        return backend.table(
            (left.name, right.name), ((v, v) for v in domain)
        )
    if isinstance(left, Const) and isinstance(right, Var):
        left, right = right, left
    if isinstance(left, Var) and isinstance(right, Const):
        if right.value not in domain:
            return backend.table((left.name,), [])
        return backend.table((left.name,), [(right.value,)])
    if isinstance(left, Const) and isinstance(right, Const):
        return (
            backend.tautology()
            if left.value == right.value
            else backend.contradiction()
        )
    raise _Uncompilable(f"malformed equality {node!r}")


class _SparseEmit:
    """Instruction factory for the sparse (VarTable) backend."""

    backend_name = "sparse"
    codec = None

    def __init__(self, db: Database):
        self.domain = db.domain
        # a private backend: compiled closures must not capture the
        # requesting evaluation's tracer/registry (plans are shared)
        self.priv = SparseBackend(db.domain)

    rows_of = staticmethod(len)

    def check_width(self, k: int) -> None:
        pass

    def predicted_bits(self, k: int) -> Optional[int]:
        return None

    # build-time constant folding ------------------------------------

    def static_atom(self, relation, terms):
        return self.priv.atom_table(relation, terms)

    def equals_value(self, node):
        return _equals_table(self.priv, self.domain, node)

    def taut(self):
        return self.priv.tautology()

    def contra(self):
        return self.priv.contradiction()

    def not_value(self, value, schema):
        return value.complement(self.domain)

    def fold_value(self, is_and, a, a_schema, b, b_schema, target):
        return a.join(b) if is_and else a.union(b, self.domain)

    def align_const(self, value, schema, target):
        return value

    def project_value(self, value, schema, var, is_forall):
        if is_forall:
            return value.forall_out(var, self.domain)
        return value.project_out(var)

    # run-time closures ----------------------------------------------

    def atom_fn(self, name, terms):
        priv = self.priv
        return lambda regs, slots: priv.atom_table(slots[name], terms)

    def not_fn(self, sreg, sschema):
        domain = self.domain
        return lambda regs, slots: regs[sreg].complement(domain)

    def alias_fn(self, sreg):
        return lambda regs, slots: regs[sreg]

    def fold_fn(self, is_and, a_reg, a_schema, b_reg, b_schema, target):
        if is_and:
            return lambda regs, slots: regs[a_reg].join(regs[b_reg])
        domain = self.domain
        return lambda regs, slots: regs[a_reg].union(regs[b_reg], domain)

    def project_fn(self, sreg, sschema, var, is_forall):
        if is_forall:
            domain = self.domain
            return lambda regs, slots: regs[sreg].forall_out(var, domain)
        return lambda regs, slots: regs[sreg].project_out(var)


class _PackedEmit:
    """Instruction factory for the packed bitset backend.

    Registers hold raw masks; every closure is a fused sequence of codec
    kernels with the alignment plan (which digits to expand where)
    resolved at build time — the straight-line analogue of
    ``PackedTable._aligned``.
    """

    backend_name = "packed"

    def __init__(self, db: Database, backend: PackedBackend):
        self.domain = db.domain
        self.max_bits = backend.max_bits
        # the *live* codec: runtime PackedRelations (fixpoint recursion
        # relations) carry it, and the identity check is the fast path
        self.codec = backend.codec
        self.priv = PackedBackend(
            db.domain, max_bits=backend.max_bits, tracer=NULL_TRACER
        )

    rows_of = staticmethod(popcount)

    def check_width(self, k: int) -> None:
        if self.codec.size(k) > self.max_bits:
            raise _Uncompilable(f"packed width {k} over mask-bit cap")

    def predicted_bits(self, k: int) -> Optional[int]:
        return self.codec.size(k)

    # build-time constant folding ------------------------------------

    def static_atom(self, relation, terms):
        return self.priv.atom_table(relation, terms).mask

    def equals_value(self, node):
        return _equals_table(self.priv, self.domain, node).mask

    def taut(self):
        return 1

    def contra(self):
        return 0

    def not_value(self, mask, schema):
        return mask ^ self.codec.full_mask(len(schema))

    def _expand_steps(self, schema, target):
        """The ``(k, d)`` expand arguments aligning ``schema`` → ``target``."""
        steps = []
        cur = list(schema)
        for var in target:
            if var not in cur:
                pos = bisect_left(cur, var)
                steps.append((len(cur), len(cur) - pos))
                cur.insert(pos, var)
        return steps

    def align_const(self, mask, schema, target):
        expand = self.codec.expand
        for k, d in self._expand_steps(schema, target):
            mask = expand(mask, k, d)
        return mask

    def fold_value(self, is_and, a, a_schema, b, b_schema, target):
        a = self.align_const(a, a_schema, target)
        b = self.align_const(b, b_schema, target)
        return (a & b) if is_and else (a | b)

    def project_value(self, mask, schema, var, is_forall):
        k = len(schema)
        d = k - 1 - schema.index(var)
        return self.codec.project(mask, k, d, universal=is_forall)

    # run-time closures ----------------------------------------------

    def atom_fn(self, name, terms):
        m = len(terms)
        var_positions: Dict[str, list] = {}
        const_positions = []
        for i, term in enumerate(terms):
            if isinstance(term, Var):
                var_positions.setdefault(term.name, []).append(i)
            elif isinstance(term, Const):
                const_positions.append((i, term.value))
            else:
                raise _Uncompilable(f"unknown term {term!r}")
        columns = sorted(var_positions)
        codec = self.codec
        priv = self.priv
        # pre-resolve the mask pipeline of PackedBackend._atom_from_mask
        bad_const = False
        sels = []
        for i, value in const_positions:
            if value not in self.domain:
                bad_const = True
                break
            sels.append((m - 1 - i, self.domain.index_of(value)))
        eqs = []
        for positions in var_positions.values():
            first = positions[0]
            for p in positions[1:]:
                eqs.append((m - 1 - first, m - 1 - p))
        keep_set = {ps[0] for ps in var_positions.values()}
        drops = sorted(
            (m - 1 - i for i in range(m) if i not in keep_set), reverse=True
        )
        names = sorted(var_positions, key=lambda v: var_positions[v][0])
        if names != columns:
            kk = len(columns)
            src_for = [0] * kk
            for j, cname in enumerate(columns):
                src_for[kk - 1 - j] = kk - 1 - names.index(cname)
        else:
            src_for = None

        def fn(regs, slots):
            rel = slots[name]
            if (
                rel.__class__ is PackedRelation
                and rel.codec is codec
                and rel.arity == m
            ):
                if bad_const:
                    return 0
                mask = rel.mask
                for d, v in sels:
                    mask = codec.select_value(mask, m, d, v)
                for da, db_ in eqs:
                    mask &= codec.eq_mask(m, da, db_)
                k = m
                for d in drops:
                    mask = codec.project(mask, k, d, universal=False)
                    k -= 1
                if src_for is not None:
                    mask = codec.permute(mask, k, src_for)
                return mask
            # foreign representation (sparse warm-start seed, mismatched
            # codec, wrong arity) — the backend path raises the same
            # structured errors the interpreter would
            return priv.atom_table(rel, terms).mask

        return fn

    def not_fn(self, sreg, sschema):
        full = self.codec.full_mask(len(sschema))
        return lambda regs, slots: regs[sreg] ^ full

    def alias_fn(self, sreg):
        return lambda regs, slots: regs[sreg]

    def fold_fn(self, is_and, a_reg, a_schema, b_reg, b_schema, target):
        expand = self.codec.expand
        a_steps = self._expand_steps(a_schema, target)
        b_steps = self._expand_steps(b_schema, target)
        if not a_steps and not b_steps:
            if is_and:
                return lambda regs, slots: regs[a_reg] & regs[b_reg]
            return lambda regs, slots: regs[a_reg] | regs[b_reg]
        if is_and:

            def fn(regs, slots):
                a = regs[a_reg]
                for k, d in a_steps:
                    a = expand(a, k, d)
                b = regs[b_reg]
                for k, d in b_steps:
                    b = expand(b, k, d)
                return a & b

        else:

            def fn(regs, slots):
                a = regs[a_reg]
                for k, d in a_steps:
                    a = expand(a, k, d)
                b = regs[b_reg]
                for k, d in b_steps:
                    b = expand(b, k, d)
                return a | b

        return fn

    def project_fn(self, sreg, sschema, var, is_forall):
        codec = self.codec
        k = len(sschema)
        d = k - 1 - sschema.index(var)
        return lambda regs, slots: codec.project(
            regs[sreg], k, d, universal=is_forall
        )


# -- the compiler ------------------------------------------------------


class _Compiler:
    def __init__(
        self,
        formula: Formula,
        dynamic: FrozenSet[str],
        db: Database,
        backend,
    ):
        if len(db.domain) == 0:
            raise _Uncompilable("empty domain")
        if isinstance(backend, PackedBackend):
            self.ops = _PackedEmit(db, backend)
        elif isinstance(backend, SparseBackend):
            self.ops = _SparseEmit(db)
        else:
            raise _Uncompilable(f"unsupported backend {backend!r}")
        self.formula = formula
        self.dynamic = frozenset(dynamic)
        self.db = db
        self.init_regs: List[object] = []
        self.cold: List[tuple] = []
        self.warm: List[tuple] = []
        self.tcold: List[tuple] = []
        self.twarm: List[tuple] = []
        self.meta: List[dict] = []
        self.segments: List[tuple] = []
        self.peak_arity = 0
        # id-keyed caches hold the node itself for a strong reference
        self._seen: Dict[int, tuple] = {}
        self._schemas: Dict[int, tuple] = {}
        self._rels: Dict[int, tuple] = {}

    # -- analysis helpers ---------------------------------------------

    def _schema(self, node: Formula) -> Tuple[str, ...]:
        cached = self._schemas.get(id(node))
        if cached is None:
            schema = tuple(sorted(free_variables(node)))
            self.ops.check_width(len(schema))
            if len(schema) > self.peak_arity:
                self.peak_arity = len(schema)
            cached = (node, schema)
            self._schemas[id(node)] = cached
        return cached[1]

    def _free_rels(self, node: Formula) -> FrozenSet[str]:
        cached = self._rels.get(id(node))
        if cached is None:
            cached = (node, free_relation_variables(node))
            self._rels[id(node)] = cached
        return cached[1]

    def _const_reg(self, value) -> int:
        self.init_regs.append(value)
        return len(self.init_regs) - 1

    def _dyn_reg(self) -> int:
        self.init_regs.append(None)
        return len(self.init_regs) - 1

    def _note(self, kind, node_name, arity, label=""):
        self.meta.append(
            {
                "kind": kind,
                "node": node_name,
                "arity": arity,
                "bits": self.ops.predicted_bits(arity),
                "label": label,
            }
        )

    # -- emission ------------------------------------------------------

    def build(self) -> Program:
        root_reg, _ = self._emit(self.formula, True, ())
        schema = self._schema(self.formula)
        ops = self.ops
        return Program(
            backend_name=ops.backend_name,
            schema=schema,
            init_regs=self.init_regs,
            cold=self.cold,
            warm=self.warm,
            traced_cold=self.tcold,
            traced_warm=self.twarm,
            root_reg=root_reg,
            rows_of=ops.rows_of,
            meta=self.meta,
            label=formula_label(self.formula),
            dynamic=self.dynamic,
            segments=self.segments,
            codec=ops.codec,
            peak_arity=self.peak_arity,
            peak_bits=ops.predicted_bits(self.peak_arity),
        )

    def _emit(self, node: Formula, warm_visible: bool, path: Tuple[int, ...]):
        """Emit ``node``; returns ``(register, static_value_or_None)``.

        ``warm_visible`` — whether the interpreter re-visits this
        occurrence on warm (post-first) evaluations; children of dynamic
        nodes are, children of static nodes are not (the whole static
        subtree is served from the parent's memo entry).  ``path`` is the
        child-index path from the program root, recorded on static
        segments so the runtime can key the evaluator's memo by the
        caller's own node objects.
        """
        prior = self._seen.get(id(node))
        if prior is not None:
            # repeated subtree object: the interpreter's per-evaluator
            # memo serves it with a memo_hits bump, every visit
            self.cold.append(_MEMO_U)
            self.tcold.append(_MEMO_T)
            if warm_visible:
                self.warm.append(_MEMO_U)
                self.twarm.append(_MEMO_T)
            return prior[1], prior[2]
        if isinstance(node, (_FixpointBase, SOExists)):
            raise _Uncompilable(type(node).__name__)
        if not isinstance(
            node, (RelAtom, Equals, Truth, Not, And, Or, Exists, Forall)
        ):
            raise _Uncompilable(f"unknown node {type(node).__name__}")
        if self._free_rels(node) & self.dynamic:
            reg = self._emit_dynamic(node, path)
            self._seen[id(node)] = (node, reg, None)
            return reg, None
        reg, value = self._emit_static(node, warm_visible, path)
        self._seen[id(node)] = (node, reg, value)
        return reg, value

    # -- static subtrees: constant-fold now, replay charges later ------

    def _emit_static(
        self, node: Formula, warm_visible: bool, path: Tuple[int, ...]
    ):
        if warm_visible:
            # on warm visits the interpreter memo serves this subtree root
            self.warm.append(_MEMO_U)
            self.twarm.append(_MEMO_T)
        # the replay is a guarded segment: if the evaluator's memo already
        # holds this node (a prior evaluation of a formula sharing the
        # subtree object — semi-naive delta bodies do), the cold run skips
        # it with one memo_hits bump, like the interpreter's memo lookup
        ordinal = len(self.segments)
        self.segments.append(None)
        seg_at = len(self.cold)
        self.cold.append(None)
        tseg_at = len(self.tcold)
        self.tcold.append(None)
        tname = type(node).__name__
        self.tcold.append((_OP_OPEN, f"fo.{tname}", formula_label(node)))
        value = self._static_body(node, path)
        schema = self._schema(node)
        arity = len(schema)
        rows = self.ops.rows_of(value)
        self.tcold.append((_OP_CLOSE, -1, arity, rows))
        self.cold.append((None, -1, tname, 1, arity, rows))
        self.tcold.append((_OP_CHARGE, -1, tname, arity, rows))
        self._note("const", tname, arity, formula_label(node))
        reg = self._const_reg(value)
        self.cold.append((_SEGEND, ordinal, None, 0, 0, 0))
        self.tcold.append((_OP_SEGEND, ordinal))
        self.cold[seg_at] = (
            _SEG, ordinal, None, len(self.cold) - 1 - seg_at, 0, 0
        )
        self.tcold[tseg_at] = (
            _OP_SEG, ordinal, len(self.tcold) - 1 - tseg_at
        )
        self.segments[ordinal] = (path, reg, schema)
        return reg, value

    def _static_body(self, node: Formula, path: Tuple[int, ...]):
        ops = self.ops
        if isinstance(node, RelAtom):
            return ops.static_atom(self.db.relation(node.name), node.terms)
        if isinstance(node, Equals):
            return ops.equals_value(node)
        if isinstance(node, Truth):
            return ops.taut() if node.value else ops.contra()
        if isinstance(node, Not):
            _, sval = self._emit(node.sub, False, path + (0,))
            return ops.not_value(sval, self._schema(node.sub))
        if isinstance(node, (And, Or)):
            is_and = isinstance(node, And)
            if not node.subs:
                return ops.taut() if is_and else ops.contra()
            fold_name = "And" if is_and else "Or"
            _, acc = self._emit(node.subs[0], False, path + (0,))
            acc_schema = self._schema(node.subs[0])
            for part_index, part in enumerate(node.subs[1:], start=1):
                _, pval = self._emit(part, False, path + (part_index,))
                pschema = self._schema(part)
                target = tuple(sorted(set(acc_schema) | set(pschema)))
                acc = ops.fold_value(
                    is_and, acc, acc_schema, pval, pschema, target
                )
                acc_schema = target
                rows = ops.rows_of(acc)
                self.cold.append(
                    (None, -1, fold_name, 1, len(target), rows)
                )
                self.tcold.append(
                    (_OP_CHARGE, -1, fold_name, len(target), rows)
                )
            return acc
        if isinstance(node, (Exists, Forall)):
            _, sval = self._emit(node.sub, False, path + (0,))
            sschema = self._schema(node.sub)
            if node.var.name in sschema:
                return ops.project_value(
                    sval, sschema, node.var.name, isinstance(node, Forall)
                )
            # vacuous quantification over a non-empty domain
            return sval
        raise _Uncompilable(f"unknown node {type(node).__name__}")

    # -- dynamic nodes: compute instructions ---------------------------

    def _both(self, untraced, traced):
        self.cold.append(untraced)
        self.warm.append(untraced)
        self.tcold.append(traced)
        self.twarm.append(traced)

    def _open_both(self, node: Formula):
        entry = (_OP_OPEN, f"fo.{type(node).__name__}", formula_label(node))
        self.tcold.append(entry)
        self.twarm.append(entry)

    def _close_both(self, reg: int, tname: str, arity: int):
        close = (_OP_CLOSE, reg, arity, 0)
        charge = (_OP_CHARGE, reg, tname, arity, 0)
        self.tcold.append(close)
        self.twarm.append(close)
        self.tcold.append(charge)
        self.twarm.append(charge)

    def _compute_node(self, fn, tname: str, arity: int, label: str) -> int:
        """A plain dynamic node: one compute + the node's wrapper charge."""
        dst = self._dyn_reg()
        entry = (fn, dst, tname, 1, arity, 0)
        self.cold.append(entry)
        self.warm.append(entry)
        compute = (_OP_COMPUTE, dst, fn)
        self.tcold.append(compute)
        self.twarm.append(compute)
        self._close_both(dst, tname, arity)
        self._note("compute", tname, arity, label)
        return dst

    def _emit_dynamic(self, node: Formula, path: Tuple[int, ...]) -> int:
        ops = self.ops
        tname = type(node).__name__
        label = formula_label(node)
        schema = self._schema(node)
        arity = len(schema)
        self._open_both(node)
        if isinstance(node, RelAtom):
            return self._compute_node(
                ops.atom_fn(node.name, node.terms), tname, arity, label
            )
        if isinstance(node, Not):
            sreg, _ = self._emit(node.sub, True, path + (0,))
            fn = ops.not_fn(sreg, self._schema(node.sub))
            return self._compute_node(fn, tname, arity, label)
        if isinstance(node, (Exists, Forall)):
            sreg, _ = self._emit(node.sub, True, path + (0,))
            sschema = self._schema(node.sub)
            if node.var.name in sschema:
                fn = ops.project_fn(
                    sreg, sschema, node.var.name, isinstance(node, Forall)
                )
            else:
                fn = ops.alias_fn(sreg)
            return self._compute_node(fn, tname, arity, label)
        if isinstance(node, (And, Or)):
            return self._emit_fold(node, tname, arity, label, path)
        # Equals/Truth have no relation variables — never dynamic
        raise _Uncompilable(f"unexpected dynamic node {tname}")

    def _emit_fold(
        self, node, tname: str, arity: int, label: str, path: Tuple[int, ...]
    ) -> int:
        ops = self.ops
        is_and = isinstance(node, And)
        subs = node.subs
        acc_reg, acc_val = self._emit(subs[0], True, path + (0,))
        acc_schema = self._schema(subs[0])
        if len(subs) == 1:
            return self._compute_node(
                ops.alias_fn(acc_reg), tname, arity, label
            )
        n_folds = len(subs) - 1
        for idx, part in enumerate(subs[1:]):
            preg, pval = self._emit(part, True, path + (idx + 1,))
            pschema = self._schema(part)
            target = tuple(sorted(set(acc_schema) | set(pschema)))
            last = idx == n_folds - 1
            if acc_val is not None and pval is not None:
                # a static-static fold inside a dynamic node: the
                # interpreter recomputes (and charges) it on *every*
                # visit — only node results are memoized, not folds
                acc_val = ops.fold_value(
                    is_and, acc_val, acc_schema, pval, pschema, target
                )
                rows = ops.rows_of(acc_val)
                self._both(
                    (None, -1, tname, 1, len(target), rows),
                    (_OP_CHARGE, -1, tname, len(target), rows),
                )
                self._note("const-fold", tname, len(target), label)
                acc_reg = None
            else:
                if acc_val is not None:
                    a_reg = self._const_reg(
                        ops.align_const(acc_val, acc_schema, target)
                    )
                    a_schema = target
                else:
                    a_reg, a_schema = acc_reg, acc_schema
                if pval is not None:
                    b_reg = self._const_reg(
                        ops.align_const(pval, pschema, target)
                    )
                    b_schema = target
                else:
                    b_reg, b_schema = preg, pschema
                fn = ops.fold_fn(
                    is_and, a_reg, a_schema, b_reg, b_schema, target
                )
                dst = self._dyn_reg()
                # the final fold's charge and the node's wrapper charge
                # coincide (same rows, same node name): charges=2
                charges = 2 if last else 1
                self._both(
                    (fn, dst, tname, charges, len(target), 0),
                    (_OP_COMPUTE, dst, fn),
                )
                fold_charge = (_OP_CHARGE, dst, tname, len(target), 0)
                self.tcold.append(fold_charge)
                self.twarm.append(fold_charge)
                self._note("fold", tname, len(target), label)
                acc_reg, acc_val = dst, None
            acc_schema = target
        self._close_both(acc_reg, tname, arity)
        return acc_reg


def describe_plans(
    formula: Formula,
    db: Database,
    backend,
    dynamic: FrozenSet[str] = frozenset(),
) -> str:
    """Render every compilable region of ``formula`` for ``--explain-plan``.

    Pure-FO formulas compile whole; fixpoint/SO operators are walked and
    their *bodies* compiled with the recursion relation marked dynamic —
    exactly the plan the fixpoint engine runs once per round.  Regions
    that fall back to the interpreter are reported as such.
    """
    sections: List[str] = []

    def visit(node: Formula, dyn: FrozenSet[str]) -> None:
        program = compile_program(node, dyn, db, backend)
        if program is not None:
            sections.append(program.describe())
            return
        if isinstance(node, _FixpointBase):
            sections.append(
                f"-- {type(node).__name__} {node.rel}"
                f"({', '.join(v.name for v in node.bound_vars)}): "
                f"body compiles with {node.rel} dynamic --"
            )
            visit(node.body, dyn | {node.rel})
            return
        if isinstance(node, SOExists):
            sections.append(
                f"-- SOExists {node.rel}/{node.arity}: grounds to SAT; "
                f"body shown with {node.rel} dynamic --"
            )
            visit(node.body, dyn | {node.rel})
            return
        if isinstance(node, (Not, Exists, Forall)):
            visit(node.sub, dyn)
            return
        if isinstance(node, (And, Or)):
            for sub in node.subs:
                visit(sub, dyn)
            return
        sections.append(
            f"(interpreter fallback: {formula_label(node)})"
        )

    visit(formula, frozenset(dynamic))
    if not sections:
        return "(no compilable regions)"
    return "\n\n".join(sections)


def warm_plans(
    formula: Formula,
    db: Database,
    backend,
    plans: "PlanCache",
    dynamic: FrozenSet[str] = frozenset(),
) -> int:
    """Pre-build every compilable region of ``formula`` into ``plans``.

    The serve layer calls this at ``prepare()`` time so the first request
    pays no compile latency.  The walk mirrors :func:`describe_plans` —
    and, crucially, the evaluator's own plan lookups: a fixpoint body is
    compiled with its recursion relation dynamic, and the dynamic set is
    intersected with each node's free relations so warmed keys are
    exactly the keys :class:`BoundedEvaluator` asks for at eval time.

    Returns the number of compiled (non-fallback) programs now cached.
    """
    from time import perf_counter

    built = 0

    def visit(node: Formula, dyn: FrozenSet[str]) -> None:
        nonlocal built
        dyn = dyn & free_relation_variables(node)
        key = plans.key_for(node, dyn, db, backend.name)
        cached = plans.get(key) if key is not None else None
        if cached is None:
            start = perf_counter()
            program = compile_program(node, dyn, db, backend)
            plans.record_build(perf_counter() - start)
            if key is not None:
                plans.put(key, program)
            cached = program if program is not None else UNCOMPILABLE
        if cached is not UNCOMPILABLE:
            built += 1
            return
        if isinstance(node, _FixpointBase) or isinstance(node, SOExists):
            visit(node.body, dyn | {node.rel})
        elif isinstance(node, (Not, Exists, Forall)):
            visit(node.sub, dyn)
        elif isinstance(node, (And, Or)):
            for sub in node.subs:
                visit(sub, dyn)

    visit(formula, frozenset(dynamic))
    return built


def compile_program(
    formula: Formula,
    dynamic: FrozenSet[str],
    db: Database,
    backend,
) -> Optional[Program]:
    """Compile, or return ``None`` to fall back to the interpreter.

    Any failure — unsupported node, over-width packed schema, a static
    relation that does not resolve, a malformed atom — falls back; the
    interpreter then raises exactly the structured error it always has.
    """
    try:
        return _Compiler(formula, dynamic, db, backend).build()
    except _Uncompilable:
        return None
    except Exception:
        return None


# -- the plan cache ----------------------------------------------------


class _Miss:
    """Cached negative result: this formula is known uncompilable."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<uncompilable>"


#: Sentinel distinguishing "cached as uncompilable" from "not cached".
UNCOMPILABLE = _Miss()


class _StructKey:
    """A formula's structural identity with a cached hash.

    Plan keys are looked up on every evaluator construction, and
    hashing a formula walks its whole tree.  The wrapper computes the
    structural hash (and the free-relation set) once per formula
    object; equality short-circuits on identity, so repeated lookups
    with the same parsed formula never re-walk the tree, while
    distinct-but-equal formulas still compare structurally.
    """

    __slots__ = ("formula", "free_rels", "_hash")

    def __init__(self, formula: Formula):
        self.formula = formula
        self.free_rels = free_relation_variables(formula)
        self._hash = hash(formula)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, _StructKey):
            return NotImplemented
        return self.formula == other.formula

    def __repr__(self) -> str:
        return f"_StructKey({self.formula!r})"


#: id(formula) → wrapper memo.  Entries hold a strong reference to the
#: formula, so a live id can never be recycled; the cap only bounds the
#: memo for pathological formula churn.
_STRUCT_KEYS: Dict[int, _StructKey] = {}
_STRUCT_KEYS_MAX = 4096


def _struct_key(formula: Formula) -> _StructKey:
    key = _STRUCT_KEYS.get(id(formula))
    if key is None:
        if len(_STRUCT_KEYS) >= _STRUCT_KEYS_MAX:
            _STRUCT_KEYS.clear()
        key = _StructKey(formula)
        _STRUCT_KEYS[id(formula)] = key
    return key


PlanKey = Tuple[
    _StructKey,
    Tuple[object, ...],
    str,
    int,
    Tuple[str, ...],
    Tuple[Tuple[str, object], ...],
]


class PlanCache:
    """A bounded LRU of compiled plans, keyed like ``SubqueryCache``.

    The key embeds the structural formula, the domain, the backend name,
    the set of dynamic relation names, the database's ``generation``
    mutation counter, and the ``state_key`` of every relation the plan
    constant-folded at build time — so ``Database.add_fact`` /
    ``remove_fact`` (which bump the generation) can never be served a
    plan whose folded constants predate the mutation.

    Negative results are cached too (as :data:`UNCOMPILABLE`), so a
    formula that falls back to the interpreter is not re-analyzed on
    every evaluation.

    Counters surface as ``compile.hits`` / ``compile.misses`` /
    ``compile.evictions`` plus the ``compile.entries`` gauge, and build
    work as ``compile.builds`` / the ``compile.build_ms`` histogram —
    visible in ``--stats`` reports and the serve ``/metrics`` exposition.
    """

    def __init__(
        self,
        max_entries: int = PLAN_CACHE_MAX_ENTRIES,
        registry: Optional[MetricsRegistry] = None,
        store: Optional["OrderedDict[PlanKey, object]"] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = self.registry.counter("compile.hits")
        self._misses = self.registry.counter("compile.misses")
        self._evictions = self.registry.counter("compile.evictions")
        self._entries_gauge = self.registry.gauge("compile.entries")
        self._builds = self.registry.counter("compile.builds")
        self._build_ms = self.registry.histogram("compile.build_ms")
        # ``store`` lets instances share plan *storage* (the process
        # default) while keeping telemetry per instance/evaluation
        self._entries: "OrderedDict[PlanKey, object]" = (
            store if store is not None else OrderedDict()
        )

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def builds(self) -> int:
        return self._builds.value

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self,
        formula: Formula,
        dynamic: FrozenSet[str],
        db: Database,
        backend_name: str,
    ) -> Optional[PlanKey]:
        """The structural plan key, or ``None`` when unkeyable.

        Static (non-dynamic) free relations are folded into the compiled
        plan's constant registers, so their current state is part of the
        key; dynamic relations enter plans symbolically and key by name
        only.
        """
        skey = _struct_key(formula)
        fingerprint = []
        for name in sorted(skey.free_rels - dynamic):
            try:
                relation = db.relation(name)
            except Exception:
                return None
            fingerprint.append((name, relation.state_key()))
        return (
            skey,
            db.domain.values,
            backend_name,
            db.generation,
            tuple(sorted(dynamic)),
            tuple(fingerprint),
        )

    def get(self, key: PlanKey):
        """``Program``, :data:`UNCOMPILABLE`, or ``None`` when absent."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return entry

    def put(self, key: PlanKey, program: Optional[Program]) -> None:
        self._entries[key] = program if program is not None else UNCOMPILABLE
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._entries_gauge.set(len(self._entries))

    def record_build(self, seconds: float) -> None:
        self._builds.inc()
        self._build_ms.observe(seconds * 1000.0)

    def invalidate(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._entries_gauge.set(0)
        return dropped

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses}, builds={self.builds})"
        )


#: Process-wide default plan storage.  Plan keys embed the domain, the
#: database generation, and every folded relation's ``state_key``, so
#: sharing compiled programs across evaluations (and across value-equal
#: databases) can never serve a stale plan — it only amortizes builds.
_DEFAULT_STORE: "OrderedDict[PlanKey, object]" = OrderedDict()


def resolve_plan_cache(value, registry: Optional[MetricsRegistry] = None):
    """Normalize an ``EvalOptions.plan_cache`` value.

    ``None`` (the default) → a cache with per-evaluation ``compile.*``
    counters backed by the process-wide plan store, so repeated solves
    of the same query compile once per process; ``True`` → a fully
    private fresh cache; ``False`` → no cache; a :class:`PlanCache`
    instance passes through, which is how the serve layer shares plans
    across requests.
    """
    if value is False:
        return None
    if value is None:
        return PlanCache(registry=registry, store=_DEFAULT_STORE)
    if value is True:
        return PlanCache(registry=registry)
    return value


__all__ = [
    "COMPILE_ENV",
    "PLAN_CACHE_MAX_ENTRIES",
    "PlanCache",
    "PlanKey",
    "Program",
    "UNCOMPILABLE",
    "compile_program",
    "describe_plans",
    "resolve_compile",
    "resolve_plan_cache",
    "subformula_at",
    "warm_plans",
]
