"""A shared, bounded subquery-result cache for bottom-up evaluation.

Bounded-variable evaluation (Prop 3.1) computes one :class:`VarTable` per
subformula, and that table depends only on

* the subformula itself (structurally — formulas are frozen dataclasses
  with structural equality),
* the *relevant* relation environment: the value of every relation name
  occurring free in the subformula, resolved through the fixpoint/SO
  bindings first and the database second, and
* the domain.

Nothing else — in particular not the surrounding assignment context.  So a
table computed once can be served for every later occurrence of an equal
subtree under an equal relevant environment: repeated subtrees inside one
query, repeated closed subformulas across fixpoint parameter assignments,
and whole repeated queries across evaluations that share a cache instance.

The cache key *contains* the relevant relation values, so a mutated
environment (a fixpoint iteration's new recursion relation, a modified
database relation) can never produce a stale hit — it simply misses.  The
price is hashing those relations; :class:`~repro.database.relation.Relation`
hashes its frozenset, which CPython caches after the first computation.

Capacity is bounded two ways, both LRU:

* ``max_entries`` bounds the number of retained tables;
* ``max_total_rows`` bounds the *sum of retained rows* — the cache's
  answer to the row budget of :mod:`repro.guard` (a cache must not hoard
  more tuples than the evaluation itself is allowed to materialize).
  Served hits are additionally charged against the active guard's row
  budget by the evaluator, exactly like freshly computed tables.

Hits, misses, and evictions are counters in a
:class:`~repro.obs.metrics.MetricsRegistry` (``cache.hits`` /
``cache.misses`` / ``cache.evictions``, plus ``cache.entries`` /
``cache.rows`` gauges), so ``repro`` metric reports show cache behaviour
alongside the engine counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.interp import VarTable
from repro.database.database import Database
from repro.database.relation import Relation
from repro.logic.syntax import Formula
from repro.logic.variables import free_relation_variables
from repro.obs.metrics import MetricsRegistry

#: Default bound on retained tables.
DEFAULT_MAX_ENTRIES = 512

#: Default bound on the sum of retained rows across all tables.
DEFAULT_MAX_TOTAL_ROWS = 1 << 20

#: Nodes smaller than this are cheaper to recompute than to hash/lookup.
DEFAULT_MIN_FORMULA_SIZE = 3

CacheKey = Tuple[
    Formula, Tuple[object, ...], str, int, Tuple[Tuple[str, object], ...]
]


class SubqueryCache:
    """A bounded LRU of ``(formula, environment) → VarTable`` entries.

    One instance may be shared across many evaluators and evaluations
    (it is not thread-safe — share within one process/thread only, which
    matches the engines' single-threaded-per-evaluation design).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_total_rows: int = DEFAULT_MAX_TOTAL_ROWS,
        min_formula_size: int = DEFAULT_MIN_FORMULA_SIZE,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_total_rows = max_total_rows
        self.min_formula_size = min_formula_size
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = self.registry.counter("cache.hits")
        self._misses = self.registry.counter("cache.misses")
        self._evictions = self.registry.counter("cache.evictions")
        self._entries_gauge = self.registry.gauge("cache.entries")
        self._rows_gauge = self.registry.gauge("cache.rows")
        self._entries: "OrderedDict[CacheKey, VarTable]" = OrderedDict()
        self._total_rows = 0
        # formula → its free relation names; keyed by the formula object
        # itself (strong reference), so the analysis runs once per subtree
        self._free_rels: Dict[Formula, FrozenSet[str]] = {}

    # -- readings --------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def total_rows(self) -> int:
        return self._total_rows

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ----------------------------------------------------------

    def cacheable(self, formula: Formula) -> bool:
        """Is this node worth caching?  Leaves are cheaper recomputed."""
        return bool(formula.children()) and formula.size() >= self.min_formula_size

    def key_for(
        self,
        formula: Formula,
        env: Dict[str, Relation],
        db: Database,
        backend: str = "sparse",
    ) -> Optional[CacheKey]:
        """The structural cache key, or ``None`` when the formula cannot
        be keyed (a relation name that resolves nowhere — the evaluation
        itself will fail, so there is nothing to cache).

        The key embeds the backend name so a shared cache never serves a
        sparse table to a packed evaluation or vice versa, and relations
        enter the fingerprint via :meth:`Relation.state_key`, which packed
        relations answer with their mask instead of hashing a materialized
        tuple set.

        The key also embeds the database's :attr:`~Database.generation`
        mutation counter: a registered database mutated in place through
        :meth:`Database.add_fact` / :meth:`Database.remove_fact` keys to
        a fresh slot on its next evaluation, so a long-lived shared cache
        (the :mod:`repro.serve` cross-request cache) can never serve rows
        computed against a pre-mutation state — even for subformulas
        whose own relations were untouched by the mutation.
        """
        rels = self._free_rels.get(formula)
        if rels is None:
            rels = free_relation_variables(formula)
            self._free_rels[formula] = rels
        fingerprint = []
        for name in sorted(rels):
            relation = env.get(name)
            if relation is None:
                try:
                    relation = db.relation(name)
                except Exception:
                    return None
            fingerprint.append((name, relation.state_key()))
        return (
            formula,
            db.domain.values,
            backend,
            db.generation,
            tuple(fingerprint),
        )

    # -- lookup / store --------------------------------------------------

    def get(self, key: CacheKey) -> Optional[VarTable]:
        """The cached table for ``key``, refreshing its LRU position."""
        table = self._entries.get(key)
        if table is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return table

    def put(self, key: CacheKey, table: VarTable) -> None:
        """Store a table, evicting least-recently-used entries as needed.

        A table larger than ``max_total_rows`` on its own is not retained
        at all (retaining it would evict everything else for one entry).
        """
        rows = len(table)
        if rows > self.max_total_rows:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_rows -= len(old)
        self._entries[key] = table
        self._total_rows += rows
        while (
            len(self._entries) > self.max_entries
            or self._total_rows > self.max_total_rows
        ):
            _, evicted = self._entries.popitem(last=False)
            self._total_rows -= len(evicted)
            self._evictions.inc()
        self._entries_gauge.set(len(self._entries))
        self._rows_gauge.set(self._total_rows)

    # -- invalidation ----------------------------------------------------

    def invalidate(self, formula: Optional[Formula] = None) -> int:
        """Drop entries; all of them, or those of one (structural) formula.

        Keys embed the full relevant relation environment, so invalidation
        is never *required* for correctness — it exists to release memory
        (e.g. after a database is discarded).  Returns the number of
        entries dropped.
        """
        if formula is None:
            dropped = len(self._entries)
            self._entries.clear()
            self._free_rels.clear()
            self._total_rows = 0
        else:
            stale = [k for k in self._entries if k[0] == formula]
            for key in stale:
                self._total_rows -= len(self._entries.pop(key))
            dropped = len(stale)
        self._entries_gauge.set(len(self._entries))
        self._rows_gauge.set(self._total_rows)
        return dropped

    def __repr__(self) -> str:
        return (
            f"SubqueryCache(entries={len(self._entries)}/{self.max_entries}, "
            f"rows={self._total_rows}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


def resolve_subquery_cache(value) -> Optional[SubqueryCache]:
    """Normalize an ``EvalOptions.subquery_cache`` value.

    ``None``/``False`` → no cache; ``True`` → a fresh private cache (still
    useful: repeated subtrees and fixpoint parameter assignments within one
    query hit it); a :class:`SubqueryCache` instance is used as-is, which
    is how results are shared across evaluations.
    """
    if value is None or value is False:
        return None
    if value is True:
        return SubqueryCache()
    return value


__all__ = ["CacheKey", "SubqueryCache", "resolve_subquery_cache"]
