"""Named, runnable perf experiments for the ``repro perf`` observatory.

Each entry reproduces the sweep at the core of one benchmark module as
a plain picklable workload, so the CLI can run it, record it into the
run store, and gate it against its committed ``BENCH_<id>.json``
baseline without going through pytest.  The seeds are fixed and every
counter the workloads report is deterministic — that is what makes the
tier-1 exact-match policy of :mod:`repro.obs.regress` possible.

Workloads follow the :func:`repro.complexity.run_sweep` convention:
``workload(parameter)`` or ``workload(parameter, tracer)``, returning a
dict of counters.  Experiment options (fixpoint strategy, edge
probability, ...) are keyword arguments bound with ``functools.partial``
so parallel sweeps can ship them to worker processes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.guard.budget import Budget
from repro.obs.tracer import NULL_TRACER

# NOTE: repro.core.engine imports repro.perf.cache, so the engine (and
# anything that pulls it in) is imported lazily inside the workloads to
# keep this module importable from repro.perf's package init.


class ExperimentError(ReproError):
    """Unknown experiment name or a bad option override."""


#: The transitive-closure query of the T2-FP strategy shoot-out.
TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"

#: Fagin-style 2-colorability, the T2-ESO grounding workload.
TWO_COLOR_QUERY = (
    "exists2 R/1. forall x. forall y. "
    "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))"
)


def _options(
    strategy: str,
    deadline: Optional[float],
    tracer,
    k_limit: Optional[int] = None,
    backend: Optional[str] = None,
    compile: Optional[bool] = None,
):
    from repro.core.engine import EvalOptions
    from repro.core.fp_eval import FixpointStrategy

    budget = (
        Budget(deadline_seconds=deadline) if deadline and deadline > 0 else None
    )
    return EvalOptions(
        strategy=FixpointStrategy(strategy),
        k_limit=k_limit,
        budget=budget,
        trace=tracer,
        backend=backend,
        compile=compile,
    )


@functools.lru_cache(maxsize=64)
def _parsed(text: str):
    """Parse a workload query once per process.

    The sweeps measure *evaluation*, and every repetition would otherwise
    re-tokenize the same fixed query string — pure constant overhead that
    dilutes the per-point timings at small n.
    """
    from repro.logic.parser import parse_formula

    return parse_formula(text)


def _counters(result, extra: Optional[Dict[str, float]] = None) -> Dict[str, float]:
    counters = {
        key: float(value) for key, value in result.stats.as_dict().items()
    }
    counters["answer_rows"] = float(len(result.relation))
    if extra:
        counters.update(extra)
    return counters


def tc_workload(
    parameter: float,
    tracer=NULL_TRACER,
    strategy: str = "seminaive",
    deadline: Optional[float] = None,
    backend: Optional[str] = None,
    compile: bool = False,
) -> Dict[str, float]:
    """Transitive closure of a path graph — the T2-FP strategy sweep.

    A path graph maximizes fixpoint depth (n-1 rounds), so the
    iteration/delta counters separate the fixpoint strategies cleanly;
    the whole workload is seed-free and fully deterministic.
    ``compile=True`` routes the fixpoint bodies through the straight-line
    plan compiler — the counters must not move (that is the compiled
    lane's regression contract), only the wall clock.
    """
    from repro.core.engine import evaluate
    from repro.workloads.graphs import path_graph

    n = int(parameter)
    result = evaluate(
        _parsed(TC_QUERY),
        path_graph(n),
        ("u", "v"),
        _options(strategy, deadline, tracer, backend=backend,
                 compile=compile or None),
    )
    return _counters(result)


def fo_path_workload(
    parameter: float,
    tracer=NULL_TRACER,
    path_len: int = 4,
    edge_prob: float = 0.3,
    deadline: Optional[float] = None,
) -> Dict[str, float]:
    """The T2-FO data sweep: a fixed FO^3 path query on seeded graphs."""
    from repro.core.engine import evaluate
    from repro.workloads.formulas import path_query_fo3
    from repro.workloads.graphs import random_graph

    n = int(parameter)
    q = path_query_fo3(int(path_len))
    result = evaluate(
        q.formula,
        random_graph(n, edge_prob, seed=n),
        q.output_vars,
        _options("monotone", deadline, tracer, k_limit=3),
    )
    return _counters(result)


def eso_two_color_workload(
    parameter: float,
    tracer=NULL_TRACER,
    edge_prob: float = 0.25,
    deadline: Optional[float] = None,
) -> Dict[str, float]:
    """The T2-ESO grounding sweep: 2-colorability of seeded graphs.

    The CNF sizes (``sat.variables``/``sat.clauses``) are the Lemma 3.6
    quantities; the boolean answer rides along as a counter so a
    satisfiability flip is caught by the gate too.
    """
    from repro.core.engine import evaluate
    from repro.logic.parser import parse_formula
    from repro.workloads.graphs import random_graph

    n = int(parameter)
    result = evaluate(
        parse_formula(TWO_COLOR_QUERY),
        random_graph(n, edge_prob, seed=n),
        (),
        _options("monotone", deadline, tracer),
    )
    return _counters(result, {"satisfiable": float(result.as_bool())})


def serve_workload(
    parameter: float,
    tracer=NULL_TRACER,
    requests: int = 18,
    max_queue: int = 4,
    burst: int = 8,
    deadline: Optional[float] = None,
) -> Dict[str, float]:
    """The SERVE robustness drill: scripted traffic through a full
    :class:`~repro.serve.service.QueryService` at database size ``n``.

    The request mix exercises every robustness path deterministically —
    transient injected faults (retried), a persistently failing tenant
    (retries exhausted, breaker trips), a tenant whose row budget forces
    the degradation ladder, and a shed burst that arrives while every
    concurrency slot is deliberately held, so queue-full shedding is
    decided by counts, never by wall-clock.  Evaluation is inline and
    serial and all chaos is seeded, which makes every reported counter
    exact-reproducible — the property the tier-1 ``counters_only``
    regression gate needs.  ``deadline`` is accepted because the perf
    harness always binds one, but deliberately unused: coupling these
    counters to wall-clock would break the exact-match gate.
    """
    import asyncio

    from repro.errors import Overloaded, ResourceExhausted
    from repro.guard.chaos import ChaosPolicy
    from repro.serve.admission import TenantPolicy
    from repro.serve.retry import RetryPolicy
    from repro.serve.service import QueryService
    from repro.workloads.graphs import random_graph

    n = int(parameter)
    service = QueryService(
        max_concurrency=2,
        max_queue=max_queue,
        workers=0,
        retry=RetryPolicy(base_delay=0.0005, jitter=0.0),
    )
    service.register_database("g", random_graph(n, 0.3, seed=n))
    service.prepare("tc", TC_QUERY, ("u", "v"))
    service.set_tenant("steady", TenantPolicy())
    service.set_tenant(
        "flaky",
        TenantPolicy(max_attempts=2, breaker_threshold=2, breaker_cooldown=1e9),
    )
    service.set_tenant("tight", TenantPolicy(budget=Budget(max_rows=1)))

    async def drive() -> None:
        for i in range(requests):
            tenant, chaos = "steady", None
            if i % 7 == 3:
                # persistent fault: fails every attempt, trips the breaker
                tenant, chaos = "flaky", ChaosPolicy(seed=i, fail_at=1)
            elif i % 5 == 2:
                # transient fault: first attempt fails, the retry is clean
                chaos = [ChaosPolicy(seed=i, fail_at=1), None]
            elif i % 9 == 4:
                # row budget too small: walks the degradation ladder
                tenant = "tight"
            try:
                await service.call(
                    tenant, "tc", "g", request_seed=i, chaos=chaos
                )
            except (Overloaded, ResourceExhausted):
                pass  # structured failures are part of the drill
        gate = asyncio.Event()

        async def blocker() -> None:
            await service.admission.admit("blocker")
            try:
                await gate.wait()
            finally:
                service.admission.release(0.0)

        blockers = [
            asyncio.ensure_future(blocker())
            for _ in range(service.admission.max_concurrency)
        ]
        await asyncio.sleep(0)  # blockers take every concurrency slot
        calls = [
            asyncio.ensure_future(
                service.call("steady", "tc", "g", request_seed=requests + j)
            )
            for j in range(max_queue + burst)
        ]
        await asyncio.sleep(0)  # every burst call reaches admission
        gate.set()
        await asyncio.gather(*calls, return_exceptions=True)
        await asyncio.gather(*blockers)

    asyncio.run(drive())
    service.close()
    snap = service.registry.snapshot()
    return {
        "requests": float(snap["serve.requests"]),
        "ok": float(snap["serve.ok"]),
        "failed": float(snap["serve.failed"]),
        "shed": float(snap["serve.shed"]),
        "retries": float(snap["serve.retries"]),
        "degraded": float(snap["serve.degraded"]),
        "breaker_trips": float(snap["serve.breaker_trips"]),
        "answer_rows": float(snap["serve.answer_rows"]),
    }


@dataclass(frozen=True)
class PerfExperiment:
    """One registry entry: what to run and which counters to fit."""

    experiment_id: str
    title: str
    parameters: Tuple[float, ...]
    workload: Callable[..., Dict[str, float]]
    options: Mapping[str, object] = field(default_factory=dict)
    fit_counters: Tuple[str, ...] = ()
    repetitions: int = 1

    def bind(
        self,
        overrides: Optional[Mapping[str, object]] = None,
        deadline: Optional[float] = None,
    ) -> Callable[..., Dict[str, float]]:
        """The picklable workload with options (and overrides) applied."""
        bound = dict(self.options)
        for key, value in (overrides or {}).items():
            if key not in bound:
                raise ExperimentError(
                    f"experiment {self.experiment_id!r} has no option "
                    f"{key!r} (available: {', '.join(sorted(bound)) or '-'})"
                )
            bound[key] = _coerce(bound[key], value, key)
        if deadline is not None:
            bound["deadline"] = deadline
        return functools.partial(self.workload, **bound)


def _coerce(default: object, value: object, key: str) -> object:
    """Coerce a ``--set key=value`` string to the default's type."""
    if not isinstance(value, str):
        return value
    try:
        if isinstance(default, bool):
            return value.lower() in ("1", "true", "yes", "on")
        if isinstance(default, int):
            return int(value)
        if isinstance(default, float) or default is None:
            return float(value) if default is not None else value
    except ValueError as exc:
        raise ExperimentError(
            f"bad value {value!r} for option {key!r}: {exc}"
        ) from exc
    return value


EXPERIMENTS: Dict[str, PerfExperiment] = {
    "T2-FP": PerfExperiment(
        experiment_id="T2-FP",
        title="FP^k transitive closure: fixpoint strategy counters",
        parameters=(6.0, 10.0, 14.0, 18.0),
        workload=tc_workload,
        options={"strategy": "seminaive", "backend": "sparse"},
        fit_counters=("table_ops", "answer_rows"),
        repetitions=1,
    ),
    "T2-FP-PACKED": PerfExperiment(
        experiment_id="T2-FP-PACKED",
        title="FP^k transitive closure on the packed n^k-bit kernel",
        parameters=(6.0, 10.0, 14.0, 18.0, 26.0),
        workload=tc_workload,
        options={"strategy": "seminaive", "backend": "packed"},
        fit_counters=("table_ops", "answer_rows"),
        # min-of-5 with warmup: the packed pair is the compiled-vs-
        # interpreted comparison, so both sides measure steady state
        repetitions=5,
    ),
    "T2-FP-COMPILED": PerfExperiment(
        experiment_id="T2-FP-COMPILED",
        title="FP^k transitive closure: compiled plans on the packed kernel",
        parameters=(6.0, 10.0, 14.0, 18.0, 26.0),
        workload=tc_workload,
        options={"strategy": "seminaive", "backend": "packed",
                 "compile": True},
        fit_counters=("table_ops", "answer_rows"),
        repetitions=5,
    ),
    "T2-FO": PerfExperiment(
        experiment_id="T2-FO",
        title="FO^3 path query: polynomial data-complexity counters",
        parameters=(4.0, 8.0, 12.0, 16.0, 20.0),
        workload=fo_path_workload,
        options={"path_len": 4, "edge_prob": 0.3},
        fit_counters=("table_ops", "max_intermediate_rows"),
        repetitions=1,
    ),
    "T2-ESO": PerfExperiment(
        experiment_id="T2-ESO",
        title="ESO^k 2-colorability: grounded CNF size counters",
        parameters=(4.0, 6.0, 8.0, 10.0),
        workload=eso_two_color_workload,
        options={"edge_prob": 0.25},
        fit_counters=("sat_variables", "sat_clauses"),
        repetitions=1,
    ),
    "SERVE": PerfExperiment(
        experiment_id="SERVE",
        title="Query service robustness drill: deterministic serve counters",
        parameters=(6.0, 8.0, 10.0),
        workload=serve_workload,
        options={"requests": 18, "max_queue": 4, "burst": 8},
        fit_counters=("ok", "answer_rows"),
        repetitions=1,
    ),
}

#: Bench-module spellings accepted by the CLI (``repro perf record
#: bench_table2_fp`` and ``repro perf record T2-FP`` are the same run).
ALIASES: Dict[str, str] = {
    "bench_table2_fp": "T2-FP",
    "bench_table2_fp_packed": "T2-FP-PACKED",
    "bench_table2_fp_compiled": "T2-FP-COMPILED",
    "bench_table2_fo": "T2-FO",
    "bench_table2_eso": "T2-ESO",
    "bench_serve": "SERVE",
}


def experiment_ids() -> Tuple[str, ...]:
    return tuple(sorted(EXPERIMENTS))


def get_experiment(name: str) -> PerfExperiment:
    canonical = ALIASES.get(name, name)
    try:
        return EXPERIMENTS[canonical]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS) + sorted(ALIASES))
        raise ExperimentError(
            f"unknown perf experiment {name!r} (known: {known})"
        ) from None


def explain_target(
    name: str, parameter: Optional[float] = None
) -> Tuple[object, object, Tuple[str, ...], Dict[str, object]]:
    """One concrete (formula, db, output_vars, eval kwargs) to explain.

    ``repro explain --experiment`` needs a single evaluation, not a
    sweep: this binds the named experiment's query and database at one
    parameter value (default: the experiment's largest registered one).
    T2-ESO is refused — the explain layer annotates the FO/FP span
    convention, and the grounded SAT pipeline does not produce it.
    """
    from repro.logic.parser import parse_formula
    from repro.workloads.formulas import path_query_fo3
    from repro.workloads.graphs import path_graph, random_graph

    experiment = get_experiment(name)
    n = int(
        parameter if parameter is not None else experiment.parameters[-1]
    )
    options: Dict[str, object] = {}
    if experiment.experiment_id in (
        "T2-FP", "T2-FP-PACKED", "T2-FP-COMPILED"
    ):
        options["strategy"] = experiment.options["strategy"]
        options["backend"] = experiment.options["backend"]
        if experiment.options.get("compile"):
            options["compile"] = True
        return parse_formula(TC_QUERY), path_graph(n), ("u", "v"), options
    if experiment.experiment_id == "T2-FO":
        q = path_query_fo3(int(experiment.options["path_len"]))
        options["strategy"] = "monotone"
        options["k_limit"] = 3
        db = random_graph(
            n, float(experiment.options["edge_prob"]), seed=n
        )
        return q.formula, db, tuple(q.output_vars), options
    raise ExperimentError(
        f"experiment {experiment.experiment_id!r} cannot be explained: "
        "the explain layer annotates FO/FP evaluation traces"
    )


def run_experiment(
    experiment: PerfExperiment,
    overrides: Optional[Mapping[str, object]] = None,
    sizes: Optional[Sequence[float]] = None,
    deadline: Optional[float] = None,
    repetitions: Optional[int] = None,
    trace: bool = False,
    jobs: int = 1,
):
    """Run one registered experiment's sweep; returns the SweepResult."""
    from repro.complexity.measure import run_sweep
    from repro.obs.tracer import Tracer

    reps = repetitions if repetitions is not None else experiment.repetitions
    return run_sweep(
        experiment.experiment_id,
        list(sizes) if sizes else list(experiment.parameters),
        experiment.bind(overrides, deadline),
        repetitions=reps,
        warmup=reps > 1,
        tracer_factory=Tracer if trace else None,
        parallel=max(1, jobs),
    )
