"""Semi-naive (differential) ascending fixpoints for FP^k bodies.

Naive ascent recomputes ``φ(S_i)`` from scratch every round — each round
re-joins against the *whole* accumulated relation, wasting exactly the
``n^k`` bound the paper fights for.  Datalog engines avoid this by
firing rules only against the last round's *delta*
(:func:`repro.datalog.engine.semi_naive`); this module generalizes the
trick from rule bodies to arbitrary positive FO bodies.

Given a body ``φ`` recursing through relation variable ``S``, the
*differential* ``D(φ)`` is a formula over ``S`` and a fresh delta
relation ``ΔS``:

* ``S(t̄)``              → ``ΔS(t̄)``
* node without ``S`` free → ``false``  (its value cannot change)
* ``φ ∨ ψ``              → ``D(φ) ∨ D(ψ)``
* ``φ ∧ ψ``              → ``(D(φ) ∧ ψ) ∨ (φ ∧ D(ψ))``
  (n-ary: one disjunct per conjunct, the others at their current value)
* ``∃x φ``               → ``∃x D(φ)``
* anything else containing ``S`` free (``¬``, ``∀``, a nested fixpoint,
  ``∃X``) → the node itself — a conservative whole-node fallback that
  recomputes the subtree at ``S_i``.

The transform keeps the soundness sandwich

    ``φ(S_i) \\ φ(S_{i-1})  ⊆  D(φ)[S ↦ S_i, ΔS ↦ Δ_i]  ⊆  φ(S_i)``

where ``Δ_i = S_i \\ S_{i-1}``: every disjunct of ``D`` is a conjunct-wise
weakening of ``φ`` (upper bound), and any assignment new at round ``i``
must make some conjunct newly true, whose differential then covers it
(lower bound; monotonicity makes the other conjuncts, at their *current*
value, still true).  Iterating ``S_{i+1} = S_i ∪ eval(D)`` therefore
reproduces the Kleene chain ``φ^i(∅)`` exactly and stops at the least
fixpoint — this is what the differential test harness
(``tests/test_differential.py``) checks tuple-for-tuple against the
naive strategies and against :mod:`repro.core.naive_eval`.

False disjuncts are simplified away as the transform builds them:
``D`` of a conjunct without ``S`` is ``false``, and keeping a
``false ∧ ψ`` disjunct would re-materialize ``ψ``'s full table every
round, defeating the point.

Only least fixpoints with a *positively* bound recursion variable get
the differential treatment (the sandwich needs monotonicity).  GFP,
IFP, PFP, and non-positive LFP bodies (possible when positivity
checking is disabled) fall back to the naive ``iterate_*`` loops, so
:class:`SemiNaiveSolver` is safe as a drop-in strategy for any query.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.core.interp import EvalStats
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.provenance import NULL_STAGE_LOG, StageLogLike
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.analysis import polarity_of
from repro.logic.syntax import (
    And,
    Exists,
    Formula,
    GFP,
    IFP,
    LFP,
    Or,
    PFP,
    RelAtom,
    Truth,
    _FixpointBase,
)
from repro.logic.variables import free_relation_variables

_FALSE = Truth(False)


def delta_relation_name(rel: str, avoid: Set[str]) -> str:
    """A fresh relation name for the delta of ``rel``."""
    base = f"{rel}__delta"
    name = base
    suffix = 0
    while name in avoid:
        suffix += 1
        name = f"{base}{suffix}"
    return name


def _is_false(formula: Formula) -> bool:
    return isinstance(formula, Truth) and not formula.value


def _or_of(parts) -> Formula:
    """A simplified disjunction: false disjuncts dropped, singletons
    unwrapped.  An empty disjunction is ``false``."""
    live = [p for p in parts if not _is_false(p)]
    if not live:
        return _FALSE
    if len(live) == 1:
        return live[0]
    return Or(tuple(live))


def differential(formula: Formula, rel: str, delta_rel: str) -> Formula:
    """The delta-restricted formula ``D(formula)`` described above.

    ``D`` is ``false`` exactly when no new assignment can appear — in
    particular for any subtree in which ``rel`` does not occur free.
    """
    if rel not in free_relation_variables(formula):
        return _FALSE
    if isinstance(formula, RelAtom):
        # rel occurs free, so this atom *is* the recursion variable
        return RelAtom(delta_rel, formula.terms)
    if isinstance(formula, Or):
        return _or_of(
            differential(sub, rel, delta_rel) for sub in formula.subs
        )
    if isinstance(formula, And):
        disjuncts = []
        for i, sub in enumerate(formula.subs):
            dsub = differential(sub, rel, delta_rel)
            if _is_false(dsub):
                continue
            conjuncts = list(formula.subs)
            conjuncts[i] = dsub
            disjuncts.append(And(tuple(conjuncts)))
        return _or_of(disjuncts)
    if isinstance(formula, Exists):
        dsub = differential(formula.sub, rel, delta_rel)
        if _is_false(dsub):
            return _FALSE
        return Exists(formula.var, dsub)
    # Not / Forall / nested fixpoints / SOExists with rel free: no cheap
    # differential — recompute the whole subtree at the current S
    return formula


class SemiNaiveSolver:
    """Delta-driven LFP ascent, naive fallback everywhere else.

    Signature-compatible with :class:`repro.core.fp_eval.NaiveSolver`;
    registered in :func:`repro.core.fp_eval.make_solver` under
    ``FixpointStrategy.SEMINAIVE``.

    Per LFP solve: round 0 evaluates the full body at ``S = ∅`` (naive —
    everything is new), then each later round evaluates only the
    differential with ``ΔS`` bound to the tuples derived last round, and
    stops the first time the delta comes up empty.  The delta rounds are
    counted in ``stats.notes`` as ``seminaive_delta_rounds`` /
    ``seminaive_delta_tuples``; fallbacks bump ``seminaive_fallbacks``.
    """

    def __init__(
        self,
        stats: EvalStats,
        pfp_iteration_limit: Optional[int] = None,
        tracer: TracerLike = NULL_TRACER,
        guard: GuardLike = NULL_GUARD,
        observer: StageLogLike = NULL_STAGE_LOG,
    ):
        self._stats = stats
        self._pfp_limit = pfp_iteration_limit
        self._tracer = tracer
        self._guard = guard
        self._observer = observer
        # node → (delta name, differential body), or None when the node
        # must use the naive fallback; structural keys, like MonotoneSolver
        self._prepared: Dict[
            _FixpointBase, Optional[Tuple[str, Formula]]
        ] = {}

    def __call__(
        self,
        evaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        observer = self._observer
        if observer.enabled:
            observer.begin(node.rel, type(node).__name__.lower())
        limit = None
        try:
            if self._tracer.enabled:
                with self._tracer.span(
                    "fp.solve",
                    rel=node.rel,
                    kind=type(node).__name__.lower(),
                    arity=node.arity,
                ) as span:
                    limit = self._solve(evaluator, node, env)
                    span.set(limit_size=len(limit))
            else:
                limit = self._solve(evaluator, node, env)
        finally:
            if observer.enabled:
                observer.end(limit)
        return limit

    def _solve(
        self,
        evaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        from repro.core.fp_eval import (
            _step_function,
            iterate_ascending,
            iterate_descending,
            iterate_inflationary,
            iterate_partial,
        )

        if isinstance(node, LFP):
            prepared = self._prepare(node, evaluator, env)
            if prepared is not None:
                return self._ascend(evaluator, node, env, prepared)
            self._stats.bump("seminaive_fallbacks")

        step = _step_function(evaluator, node, env, self._stats)
        tracer, guard = self._tracer, self._guard
        observer = self._observer
        backend = evaluator.backend
        if isinstance(node, LFP):
            return iterate_ascending(
                step,
                backend.empty_relation(node.arity),
                self._stats,
                tracer,
                guard,
                observer,
            )
        # GFP/IFP/PFP: delegate to the naive loops unchanged
        if isinstance(node, GFP):
            return iterate_descending(
                step,
                backend.full_relation(node.arity),
                self._stats,
                tracer,
                guard,
                observer,
            )
        if isinstance(node, IFP):
            return iterate_inflationary(
                step,
                node.arity,
                self._stats,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        if isinstance(node, PFP):
            return iterate_partial(
                step,
                node.arity,
                self._stats,
                self._pfp_limit,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        raise EvaluationError(f"unknown fixpoint node {node!r}")

    # -- preparation ---------------------------------------------------

    def _prepare(
        self,
        node: LFP,
        evaluator,
        env: Dict[str, Relation],
    ) -> Optional[Tuple[str, Formula]]:
        """The (delta name, differential body) for ``node``, or ``None``
        when semi-naive ascent would be unsound (non-positive body)."""
        if node in self._prepared:
            prepared = self._prepared[node]
            # the cached delta name must still be fresh for this call's
            # environment; a collision (pathological naming) re-prepares
            if prepared is None or (
                prepared[0] not in env
                and prepared[0] not in evaluator.db.relation_names()
            ):
                return prepared
        if polarity_of(node.body, node.rel) != "positive":
            # covers both genuinely non-monotone bindings ("negative" /
            # "both") and bodies that never mention the variable (None)
            # when the differential would be degenerate anyway
            self._prepared[node] = None
            return None
        avoid = (
            set(free_relation_variables(node.body))
            | {node.rel}
            | set(env)
            | set(evaluator.db.relation_names())
        )
        delta_rel = delta_relation_name(node.rel, avoid)
        prepared = (delta_rel, differential(node.body, node.rel, delta_rel))
        self._prepared[node] = prepared
        return prepared

    # -- the ascent ----------------------------------------------------

    def _eval_round(
        self,
        evaluator,
        body: Formula,
        env: Dict[str, Relation],
        bindings: Dict[str, Relation],
        order,
    ) -> Relation:
        """One body (or differential-body) evaluation as a relation."""
        self._stats.body_evaluations += 1
        inner_env = dict(env)
        inner_env.update(bindings)
        table = evaluator._eval(body, inner_env)
        extra = set(table.variables) - set(order)
        if extra:
            raise EvaluationError(
                f"fixpoint body has unexpected free variables {sorted(extra)}"
            )
        table = table.cylindrify(order, evaluator.domain)
        return table.to_relation(order)

    def _ascend(
        self,
        evaluator,
        node: LFP,
        env: Dict[str, Relation],
        prepared: Tuple[str, Formula],
    ) -> Relation:
        delta_rel, dbody = prepared
        order = [v.name for v in node.bound_vars]
        stats, tracer, guard = self._stats, self._tracer, self._guard
        observer = self._observer

        # round 0: φ(∅) in full — every tuple is new
        empty = evaluator.backend.empty_relation(node.arity)
        stats.fixpoint_iterations += 1
        if guard.enabled:
            guard.charge_iteration(index=0, size=0)
        if tracer.enabled:
            with tracer.span("fp.iteration") as span:
                current = self._eval_round(
                    evaluator, node.body, env, {node.rel: empty}, order
                )
                span.set(index=0, size=len(current), delta=len(current))
        else:
            current = self._eval_round(
                evaluator, node.body, env, {node.rel: empty}, order
            )
        if observer.enabled:
            # stage numbering matches the naive Kleene chain: S_0 = ∅,
            # S_1 = φ(∅), so the full round 0 lands at stage index 1
            observer.stage(0, empty)
            if current:
                observer.stage(1, current, delta=current)
        delta = current

        index = 1
        while delta:
            stats.fixpoint_iterations += 1
            stats.bump("seminaive_delta_rounds")
            stats.bump("seminaive_delta_tuples", len(delta))
            if guard.enabled:
                guard.charge_iteration(index=index, size=len(current))
            bindings = {node.rel: current, delta_rel: delta}
            if tracer.enabled:
                with tracer.span("fp.iteration") as span:
                    candidate = self._eval_round(
                        evaluator, dbody, env, bindings, order
                    )
                    new = candidate.difference(current)
                    span.set(
                        index=index,
                        size=len(current) + len(new),
                        delta=len(new),
                    )
            else:
                candidate = self._eval_round(
                    evaluator, dbody, env, bindings, order
                )
                new = candidate.difference(current)
            if not new:
                return current
            current = current.union(new)
            if observer.enabled:
                observer.stage(index + 1, current, delta=new)
            delta = new
            index += 1
        return current


__all__ = ["SemiNaiveSolver", "delta_relation_name", "differential"]
