"""The k-pebble game on relational structures.

Positions are placements of k pebble *pairs*: slot ``i`` is either empty
or holds ``(a, b)`` with ``a`` in the first structure and ``b`` in the
second.  Spoiler picks a slot and places its pebble on an element of
either structure; Duplicator answers on the other structure.  Duplicator
survives a round iff the placement remains a *partial isomorphism*
(same equalities, same atomic facts over the pebbled elements).

Duplicator's winning positions for the infinite game form the greatest
fixpoint of "partial iso, and every Spoiler move has a surviving reply" —
computed here by downward iteration over the (finite) arena.  The
fundamental theorem of finite-variable logics: Duplicator wins from the
empty position iff the structures agree on all ``L^k_{∞ω}`` sentences,
hence on all FO^k sentences — the expressive-power counterpart of the
paper's complexity story (its [IK89]/[KV92] references).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.database.database import Database
from repro.errors import EvaluationError

Slot = Optional[Tuple[object, object]]
Position = Tuple[Slot, ...]


def _check_same_schema(left: Database, right: Database) -> None:
    if left.schema != right.schema:
        raise EvaluationError(
            "pebble games need structures over the same schema"
        )


def _is_partial_iso(
    position: Position, left: Database, right: Database
) -> bool:
    pairs = [slot for slot in position if slot is not None]
    # equality pattern / functionality / injectivity
    mapping: Dict[object, object] = {}
    inverse: Dict[object, object] = {}
    for a, b in pairs:
        if mapping.get(a, b) != b or inverse.get(b, a) != a:
            return False
        mapping[a] = b
        inverse[b] = a
    # atomic facts over the pebbled elements
    a_elements = list(mapping)
    for name in left.relation_names():
        rel_a = left.relation(name)
        rel_b = right.relation(name)
        arity = rel_a.arity
        if arity == 0:
            if (() in rel_a) != (() in rel_b):
                return False
            continue
        for combo in itertools.product(a_elements, repeat=arity):
            image = tuple(mapping[x] for x in combo)
            if (combo in rel_a) != (image in rel_b):
                return False
    return True


def _positions(left: Database, right: Database, k: int) -> List[Position]:
    slot_values: List[Slot] = [None]
    slot_values += [
        (a, b) for a in left.domain.values for b in right.domain.values
    ]
    return [
        tuple(combo) for combo in itertools.product(slot_values, repeat=k)
    ]


def pebble_game_winning_positions(
    left: Database, right: Database, k: int
) -> FrozenSet[Position]:
    """Duplicator's winning positions of the infinite k-pebble game.

    Computed as a greatest fixpoint: start from all partial isomorphisms
    and repeatedly discard positions from which some Spoiler move has no
    surviving Duplicator reply.
    """
    _check_same_schema(left, right)
    if k < 1:
        raise EvaluationError(f"need at least one pebble, got {k}")
    candidates: Set[Position] = {
        p
        for p in _positions(left, right, k)
        if _is_partial_iso(p, left, right)
    }
    left_elems = list(left.domain.values)
    right_elems = list(right.domain.values)
    changed = True
    while changed:
        changed = False
        for position in list(candidates):
            if not _survives(position, candidates, left_elems, right_elems, k):
                candidates.discard(position)
                changed = True
    return frozenset(candidates)


def _survives(
    position: Position,
    winning: Set[Position],
    left_elems: List[object],
    right_elems: List[object],
    k: int,
) -> bool:
    for slot in range(k):
        # Spoiler plays in the left structure; Duplicator answers right
        for a in left_elems:
            if not any(
                _with(position, slot, (a, b)) in winning for b in right_elems
            ):
                return False
        # Spoiler plays in the right structure; Duplicator answers left
        for b in right_elems:
            if not any(
                _with(position, slot, (a, b)) in winning for a in left_elems
            ):
                return False
    return True


def _with(position: Position, slot: int, pair: Tuple[object, object]) -> Position:
    replaced = list(position)
    replaced[slot] = pair
    return tuple(replaced)


def duplicator_wins(
    left: Database,
    right: Database,
    k: int,
    start: Optional[Position] = None,
) -> bool:
    """Does Duplicator win the infinite k-pebble game from ``start``?

    ``start`` defaults to the empty position (no pebbles placed).  Empty
    domains: two empty structures are trivially equivalent; an empty and
    a non-empty structure are separated by ``∃x (x = x)`` and Spoiler
    wins accordingly.
    """
    _check_same_schema(left, right)
    left_empty = left.size() == 0
    right_empty = right.size() == 0
    if left_empty or right_empty:
        return left_empty == right_empty
    winning = pebble_game_winning_positions(left, right, k)
    position = start if start is not None else (None,) * k
    if len(position) != k:
        raise EvaluationError(
            f"start position has {len(position)} slots, expected {k}"
        )
    return position in winning


def k_equivalent(left: Database, right: Database, k: int) -> bool:
    """``left ≡^k right``: agreement on every ``L^k_{∞ω}`` (hence FO^k)
    sentence, by the pebble-game characterization."""
    return duplicator_wins(left, right, k)
