"""k-pebble games: the expressive-power side of bounded-variable logics.

The paper's Section 2.2 points to [IK89] and the finite-variable-logic
literature [KV92, Hod93] for the *expressive power* of FO^k.  The
classical tool there is the k-pebble game: Spoiler and Duplicator each
control k pebbles on two structures, and Duplicator has a winning
strategy for the infinite game exactly when the structures satisfy the
same ``L^k_{∞ω}`` sentences — in particular, the same FO^k sentences.

* :mod:`~repro.games.pebble` — the game arena, the greatest-fixpoint
  computation of Duplicator's winning positions (itself a bounded-arity
  fixpoint computation, pleasingly), and ``k``-equivalence tests.
"""

from repro.games.pebble import (
    duplicator_wins,
    k_equivalent,
    pebble_game_winning_positions,
)

__all__ = [
    "pebble_game_winning_positions",
    "duplicator_wins",
    "k_equivalent",
]
