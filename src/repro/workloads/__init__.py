"""Workload generators: databases and query families for tests and benches.

* :mod:`~repro.workloads.graphs` — graph-shaped databases (paths, cycles,
  grids, random digraphs, DAGs) with optional unary labels;
* :mod:`~repro.workloads.company` — the EMP/MGR/SCY/SAL schema of the
  paper's introduction and its "earn less than the manager's secretary"
  query, in naive and bounded-variable forms;
* :mod:`~repro.workloads.formulas` — query families: the n-step-path
  queries of Section 2.2 (naive n+1-variable and FO^3 forms), chain joins,
  random FO^k formulas, nested alternating fixpoint families.

Random QBF instances live in :func:`repro.reductions.qbf.random_qbf` and
random Kripke structures in
:meth:`repro.mucalculus.kripke.KripkeStructure.random` — next to the code
they exercise.
"""

from repro.workloads.graphs import (
    cycle_graph,
    dag_graph,
    grid_graph,
    labeled_graph,
    path_graph,
    random_graph,
)
from repro.workloads.company import (
    company_database,
    earns_less_bounded,
    earns_less_naive_algebra,
    earns_less_query,
)
from repro.workloads.formulas import (
    alternating_fixpoint_family,
    chain_join_query,
    nested_lfp_family,
    path_query_fo3,
    path_query_naive,
    random_fo_formula,
    reachability_query,
)
from repro.workloads.ordered import (
    domain_parity,
    even_cardinality_query,
    with_order,
)

__all__ = [
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "random_graph",
    "dag_graph",
    "labeled_graph",
    "company_database",
    "earns_less_query",
    "earns_less_bounded",
    "earns_less_naive_algebra",
    "path_query_naive",
    "path_query_fo3",
    "chain_join_query",
    "random_fo_formula",
    "alternating_fixpoint_family",
    "nested_lfp_family",
    "reachability_query",
    "with_order",
    "even_cardinality_query",
    "domain_parity",
]
