"""Graph-shaped databases.

Graphs are the canonical relational databases of the paper (a binary edge
relation ``E``, optionally unary labels) — they drive the path queries of
Section 2.2, the fixpoint examples of Section 3.2, and the µ-calculus
application of Section 1.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation


def path_graph(n: int, edge_name: str = "E") -> Database:
    """The directed path ``0 → 1 → ... → n-1``."""
    edges = [(i, i + 1) for i in range(n - 1)]
    return Database(Domain.range(n), {edge_name: Relation(2, edges)})


def cycle_graph(n: int, edge_name: str = "E") -> Database:
    """The directed cycle on ``n`` vertices."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Database(Domain.range(n), {edge_name: Relation(2, edges)})


def grid_graph(rows: int, cols: int, edge_name: str = "E") -> Database:
    """A directed grid: right and down edges on a ``rows × cols`` lattice."""
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Database(Domain.range(rows * cols), {edge_name: Relation(2, edges)})


def random_graph(
    n: int, p: float, seed: int = 0, edge_name: str = "E"
) -> Database:
    """A ``G(n, p)`` directed graph (no self-loops), seeded for repeatability."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < p
    ]
    return Database(Domain.range(n), {edge_name: Relation(2, edges)})


def dag_graph(n: int, p: float, seed: int = 0, edge_name: str = "E") -> Database:
    """A random DAG: edges only go from smaller to larger vertex ids."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Database(Domain.range(n), {edge_name: Relation(2, edges)})


def labeled_graph(
    base: Database,
    labels: Mapping[str, Iterable[int]],
) -> Database:
    """Add unary label relations to a graph database.

    >>> g = labeled_graph(path_graph(3), {"P": [0, 2]})
    >>> len(g.relation("P"))
    2
    """
    relations: Dict[str, Relation] = {
        name: base.relation(name) for name in base.relation_names()
    }
    for name, members in labels.items():
        relations[name] = Relation(1, [(m,) for m in members])
    return Database(base.domain, relations)


def random_labeled_graph(
    n: int,
    p: float,
    label_names: Sequence[str],
    label_density: float = 0.5,
    seed: int = 0,
) -> Database:
    """A random graph with random unary labels — µ-calculus workloads."""
    rng = random.Random(seed)
    base = random_graph(n, p, seed=rng.randrange(1 << 30))
    labels = {
        name: [v for v in range(n) if rng.random() < label_density]
        for name in label_names
    }
    return labeled_graph(base, labels)
