"""Ordered databases and capture-theorem demonstrations (Section 2.2).

"Over ordered databases, FP expresses precisely all queries whose data
complexity is in PTIME [Imm86, Var82]" and "PFP expresses precisely all
queries whose data complexity is in PSPACE [Var82, AV89]".  The capture
proofs are constructive simulations of Turing machines; what is cleanly
demonstrable at library scale is the *role of the order*:

* :func:`with_order` equips any database with a strict linear order
  ``LT``, a successor relation ``SUCC``, and endpoint labels
  ``FIRST``/``LAST`` over the canonical domain order;
* :func:`even_cardinality_query` — the textbook example: EVEN(|D|) is a
  PTIME property that is *not* expressible without the order in any
  bounded-variable logic (the k-pebble game shows ``K_n ≡^k K_{n+1}``
  for n ≥ k), but with the order it is a plain FP² query walking SUCC
  and flipping a parity bit;
* :func:`domain_parity` — the reference implementation of the property.

Tests pair this with :mod:`repro.games` to exhibit both halves:
inexpressibility without order, expressibility with it.
"""

from __future__ import annotations

from typing import Dict

from repro.database.database import Database
from repro.database.relation import Relation
from repro.core.engine import Query
from repro.logic.builders import and_, atom, exists, lfp, or_


def with_order(db: Database) -> Database:
    """A copy of ``db`` extended with LT, SUCC, FIRST, and LAST.

    The order is the canonical order of the domain.  Existing relations
    with those names are an error (they would silently change meaning).
    """
    values = db.domain.values
    reserved = {"LT", "SUCC", "FIRST", "LAST"}
    clash = reserved & set(db.relation_names())
    if clash:
        from repro.errors import SchemaError

        raise SchemaError(
            f"database already defines order relations {sorted(clash)}"
        )
    lt = [
        (values[i], values[j])
        for i in range(len(values))
        for j in range(i + 1, len(values))
    ]
    succ = [(values[i], values[i + 1]) for i in range(len(values) - 1)]
    first = [(values[0],)] if values else []
    last = [(values[-1],)] if values else []
    extended: Dict[str, Relation] = {
        name: db.relation(name) for name in db.relation_names()
    }
    extended["LT"] = Relation(2, lt)
    extended["SUCC"] = Relation(2, succ)
    extended["FIRST"] = Relation(1, first)
    extended["LAST"] = Relation(1, last)
    return Database(db.domain, extended)


def domain_parity(db: Database) -> bool:
    """Reference: is ``|D|`` even?  (A trivially-PTIME property.)"""
    return db.size() % 2 == 0


def even_cardinality_query() -> Query:
    """EVEN(|D|) as an FP² sentence over an ordered database.

    ``ODD(x)`` — "x is at an odd (1-based) position" — is the least
    fixpoint of "x is first, or x is two SUCC-steps after an odd
    element" (negation may not appear under the lfp, so positions are
    tracked two at a time)::

        ODD(x) ← FIRST(x)
        ODD(x) ← ∃y (SUCC(y, x) ∧ ∃x (SUCC(x, y) ∧ ODD(x)))

    Two individual variables suffice (the inner ``x`` re-binds), and the
    domain size is even iff the last element is *not* odd.  The property
    is PTIME-trivial yet provably outside order-free FO^k/L^k_∞ω — the
    tests exhibit that with the k-pebble game — which is the point of
    the paper's "over *ordered* databases" proviso.
    """
    odd = lfp(
        "ODD",
        ["x"],
        or_(
            atom("FIRST", "x"),
            exists(
                "y",
                and_(
                    atom("SUCC", "y", "x"),
                    exists("x", and_(atom("SUCC", "x", "y"), atom("ODD", "x"))),
                ),
            ),
        ),
        ["x"],
    )
    # even size ⟺ no odd-positioned last element
    from repro.logic.builders import forall, not_

    sentence = forall("x", or_(not_(atom("LAST", "x")), not_(odd)))
    return Query(sentence, output_vars=(), name="even-cardinality")
