"""Query families for the benchmarks and the property tests.

* the n-step-path queries of Section 2.2 — the naive ``n+1``-variable
  form ``∃z_1..z_{n-1} (E(x,z_1) ∧ ... ∧ E(z_{n-1},y))`` and the paper's
  FO^3 form built by variable reuse:
  ``φ_{n+1}(x,y) = ∃z (E(x,z) ∧ ∃x (x = z ∧ φ_n(x,y)))``;
* chain-join queries of growing width (the Table 1 blow-up driver);
* alternating μ/ν fixpoint families of chosen depth (the Theorem 3.5
  ablation driver);
* seeded random FO^k formulas over a schema (the property-test fuzzer
  lives in the test suite; this generator serves the benchmarks).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.core.engine import Query
from repro.errors import ReproError
from repro.logic.builders import (
    and_,
    atom,
    eq,
    exists,
    forall,
    gfp,
    lfp,
    or_,
)
from repro.logic.syntax import (
    And,
    Exists,
    Formula,
    Not,
    Or,
    Var,
)


def path_query_naive(n: int, edge_name: str = "E") -> Query:
    """``x →^n y`` with ``n+1`` distinct variables (the naive Section 2.2 form)."""
    if n < 1:
        raise ReproError(f"path length must be >= 1, got {n}")
    hops: List[Formula] = []
    previous = "x"
    middles = [f"z{i}" for i in range(1, n)]
    for z in middles:
        hops.append(atom(edge_name, previous, z))
        previous = z
    hops.append(atom(edge_name, previous, "y"))
    return Query(
        exists(middles, and_(*hops)) if middles else hops[0],
        output_vars=("x", "y"),
        name=f"path-{n}-naive",
    )


def path_query_fo3(n: int, edge_name: str = "E") -> Query:
    """``x →^n y`` with three variables, by the paper's reuse trick.

    ``φ_1(x,y) = E(x,y)``;
    ``φ_{m+1}(x,y) = ∃z (E(x,z) ∧ ∃x (x = z ∧ φ_m(x,y)))``.
    """
    if n < 1:
        raise ReproError(f"path length must be >= 1, got {n}")
    phi: Formula = atom(edge_name, "x", "y")
    for _ in range(n - 1):
        phi = exists(
            "z",
            and_(atom(edge_name, "x", "z"), exists("x", and_(eq("x", "z"), phi))),
        )
    return Query(phi, output_vars=("x", "y"), name=f"path-{n}-fo3")


def chain_join_query(width: int, edge_name: str = "E") -> Query:
    """A conjunctive chain of ``width`` edge atoms over distinct variables.

    Used by the Table 1 benchmark: naive evaluation materializes a
    ``width+1``-ary intermediate, so cost grows as ``n^{width+1}``.
    """
    if width < 1:
        raise ReproError(f"chain width must be >= 1, got {width}")
    variables = [f"v{i}" for i in range(width + 1)]
    atoms = [
        atom(edge_name, variables[i], variables[i + 1]) for i in range(width)
    ]
    body = exists(variables[1:-1], and_(*atoms)) if width > 1 else atoms[0]
    return Query(
        body,
        output_vars=(variables[0], variables[-1]),
        name=f"chain-{width}",
    )


def reachability_query(edge_name: str = "E") -> Query:
    """Transitive reachability ``x →* y`` as an FP^3 query."""
    body = lfp(
        "S",
        ["x"],
        or_(eq("x", "y"), exists("z", and_(atom(edge_name, "z", "x"), atom("S", "z")))),
        ["x"],
    )
    return Query(body, output_vars=("x", "y"), name="reachability")


def alternating_fixpoint_family(
    depth: int, edge_name: str = "E", label_prefix: str = "P"
) -> Query:
    """A genuinely alternating μ/ν/μ/... nest of the given depth.

    Construction (unary fixpoints, three individual variables):

    * level 1:   ``[lfp X1(z). P1(z) | ∃y (E(z,y) ∧ X1(y))](w)``
    * level i:   ``[σ_i Xi(z). (Pi(z) ∧ Xi-dependence) | inner'](z...)``
      where ``inner'`` is level i-1's fixpoint with ``Xi(z)`` disjoined
      into its body — so every inner fixpoint genuinely reads the
      enclosing recursion variable and the alternation is *dependent*
      (the ``l`` of the ``n^{k·l}`` naive cost and of Theorem 3.5's
      ``l·n^k``).

    Kinds alternate lfp, gfp, lfp, ... from the inside out.  The query is
    the sentence ``∃w <depth-level fixpoint>(w)`` over a graph with
    labels ``P1 .. P<depth>``.
    """
    if depth < 1:
        raise ReproError(f"alternation depth must be >= 1, got {depth}")
    body: Formula = lfp(
        "X1",
        ["z"],
        or_(
            atom(f"{label_prefix}1", "z"),
            exists("y", and_(atom(edge_name, "z", "y"), atom("X1", "y"))),
        ),
        ["w"],
    )
    for level in range(2, depth + 1):
        rel = f"X{level}"
        inner_at_z = _reapply(_inject_dependence(body, rel), "z")
        level_body = or_(
            and_(
                atom(f"{label_prefix}{level}", "z"),
                exists("y", and_(atom(edge_name, "z", "y"), atom(rel, "y"))),
            ),
            inner_at_z,
        )
        maker = gfp if level % 2 == 0 else lfp
        body = maker(rel, ["z"], level_body, ["w"])
    return Query(
        exists("w", body), output_vars=(), name=f"alternating-depth-{depth}"
    )


def _inject_dependence(inner_fixpoint: Formula, outer_rel: str) -> Formula:
    """Disjoin ``outer_rel(z̄)`` into the inner fixpoint's body."""
    from repro.logic.syntax import _FixpointBase

    if not isinstance(inner_fixpoint, _FixpointBase):
        return inner_fixpoint
    bound = inner_fixpoint.bound_vars
    return type(inner_fixpoint)(
        inner_fixpoint.rel,
        bound,
        or_(inner_fixpoint.body, atom(outer_rel, bound[0].name)),
        inner_fixpoint.args,
    )


def _reapply(fixpoint: Formula, variable: str) -> Formula:
    """Re-apply a unary fixpoint formula at a different argument variable."""
    from repro.logic.syntax import _FixpointBase

    if not isinstance(fixpoint, _FixpointBase):
        return fixpoint
    return type(fixpoint)(
        fixpoint.rel,
        fixpoint.bound_vars,
        fixpoint.body,
        (Var(variable),),
    )


def nested_lfp_family(
    depth: int,
    edge_name: str = "E",
    start_label: str = "P1",
    anchor_label: str = "L",
) -> Query:
    """Dependent same-kind nesting that genuinely multiplies work
    (the footnote-5 phenomenon).

    Intended for a directed path with ``start_label`` at the source and
    ``anchor_label`` at the sink:

    * level 1: forward reachability from ``start_label`` — ``Θ(n)``
      Kleene iterations, re-solved from scratch on every enclosing
      iteration by a restart-everything evaluator;
    * level ``i+1``::

          [lfp N(z). inner^{+N}(z) & (L(z) | ∃y (E(z,y) & N(y)))](w)

      grows backward from the anchor one element per iteration (``Θ(n)``
      outer steps), and ``inner^{+N}`` — level ``i`` with ``N(z)``
      disjoined into its body — must be re-solved at each step because
      its environment changed.  Naive cost therefore multiplies per
      level (``~n^l``); warm-started evaluation collapses the re-solves
      (``~l·n``), which is exactly footnote 5's point.
    """
    if depth < 1:
        raise ReproError(f"nesting depth must be >= 1, got {depth}")
    body: Formula = lfp(
        "N1",
        ["z"],
        or_(
            atom(start_label, "z"),
            exists("y", and_(atom(edge_name, "y", "z"), atom("N1", "y"))),
        ),
        ["w"],
    )
    for level in range(2, depth + 1):
        rel = f"N{level}"
        inner_at_z = _reapply(_inject_dependence(body, rel), "z")
        level_body = and_(
            inner_at_z,
            or_(
                atom(anchor_label, "z"),
                exists("y", and_(atom(edge_name, "z", "y"), atom(rel, "y"))),
            ),
        )
        body = lfp(rel, ["z"], level_body, ["w"])
    return Query(body, output_vars=("w",), name=f"nested-lfp-{depth}")


def random_fo_formula(
    relations: Sequence[Tuple[str, int]],
    variables: Sequence[str],
    depth: int,
    seed: int = 0,
) -> Formula:
    """A seeded random FO formula over the given schema and variables.

    Used by benchmarks to generate expression-complexity sweeps; the
    formula's width is at most ``len(variables)`` by construction.
    """
    rng = random.Random(seed)
    names = list(variables)

    def build(remaining: int) -> Formula:
        if remaining <= 0 or rng.random() < 0.25:
            if rng.random() < 0.8 and relations:
                rel, arity = rng.choice(list(relations))
                return atom(rel, *(rng.choice(names) for _ in range(arity)))
            return eq(rng.choice(names), rng.choice(names))
        choice = rng.randrange(5)
        if choice == 0:
            return Not(build(remaining - 1))
        if choice == 1:
            return And((build(remaining - 1), build(remaining - 1)))
        if choice == 2:
            return Or((build(remaining - 1), build(remaining - 1)))
        if choice == 3:
            return Exists(Var(rng.choice(names)), build(remaining - 1))
        return exists(rng.choice(names), build(remaining - 1)) if False else (
            forall(rng.choice(names), build(remaining - 1))
        )

    return build(depth)
