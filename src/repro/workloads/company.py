"""The paper's introduction example: employees, managers, secretaries.

Schema (Section 1): ``EMP(Emp, Dept)``, ``MGR(Dept, Mgr)``,
``SCY(Mgr, Scy)``, ``SAL(Emp, Sal)`` — plus an explicit strict order
``LT(Sal, Sal)`` on salary values so "earns less" is expressible.

Query: *find employees who earn less money than their manager's
secretary*.  The naive form uses six distinct variables (one per role);
the bounded form reuses variables and needs only three — its largest
intermediate relation has arity 3 instead of the naive plan's 10-ary
cross product.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.core.engine import Query
from repro.logic.builders import and_, atom, exists


def company_database(
    num_employees: int = 12,
    num_departments: int = 4,
    num_salary_levels: int = 8,
    seed: int = 0,
) -> Database:
    """A random company instance.

    Domain layout (all integers): employees ``0 .. E-1``; departments
    ``E .. E+D-1``; secretaries are employees; managers are employees;
    salary levels ``E+D .. E+D+L-1`` ordered by ``LT``.
    """
    rng = random.Random(seed)
    employees = list(range(num_employees))
    departments = list(range(num_employees, num_employees + num_departments))
    salary_base = num_employees + num_departments
    salaries = list(range(salary_base, salary_base + num_salary_levels))

    emp_rows: List[Tuple[int, int]] = [
        (e, rng.choice(departments)) for e in employees
    ]
    managers: Dict[int, int] = {
        d: rng.choice(employees) for d in departments
    }
    mgr_rows = [(d, m) for d, m in managers.items()]
    scy_rows = [
        (m, rng.choice(employees)) for m in set(managers.values())
    ]
    sal_rows = [(e, rng.choice(salaries)) for e in employees]
    lt_rows = [
        (a, b) for a in salaries for b in salaries if a < b
    ]
    domain = Domain(employees + departments + salaries)
    return Database(
        domain,
        {
            "EMP": Relation(2, emp_rows),
            "MGR": Relation(2, mgr_rows),
            "SCY": Relation(2, scy_rows),
            "SAL": Relation(2, sal_rows),
            "LT": Relation(2, lt_rows),
        },
    )


def earns_less_naive() -> Query:
    """The six-variable form: one fresh variable per role.

    Mirrors the "naive approach" of Section 1 — a query optimizer that
    evaluates it subformula-by-subformula carries six live variables.
    """
    body = exists(
        ["d", "m", "s", "t", "u"],
        and_(
            atom("EMP", "e", "d"),
            atom("MGR", "d", "m"),
            atom("SCY", "m", "s"),
            atom("SAL", "s", "t"),
            atom("SAL", "e", "u"),
            atom("LT", "u", "t"),
        ),
    )
    return Query(body, output_vars=("e",), name="earns-less-naive")


def earns_less_bounded() -> Query:
    """The three-variable form, reusing ``a`` and ``b`` along the chain.

    ``a`` is successively the department, the secretary, and the
    employee's salary; ``b`` is the manager and the secretary's salary —
    the variable-reuse trick of Section 2.2 applied to the intro example.
    """
    body = exists(
        "a",
        and_(
            atom("EMP", "e", "a"),
            exists(
                "b",
                and_(
                    atom("MGR", "a", "b"),
                    exists(
                        "a",
                        and_(
                            atom("SCY", "b", "a"),
                            exists(
                                "b",
                                and_(
                                    atom("SAL", "a", "b"),
                                    exists(
                                        "a",
                                        and_(
                                            atom("SAL", "e", "a"),
                                            atom("LT", "a", "b"),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return Query(body, output_vars=("e",), name="earns-less-fo3")


def earns_less_query(bounded: bool = True) -> Query:
    """The intro query in either form."""
    return earns_less_bounded() if bounded else earns_less_naive()


def earns_less_naive_algebra():
    """The cross-product-first algebra plan the introduction warns about.

    Returns a :class:`repro.algebra.ops.PlanNode` whose largest
    intermediate is the 10-ary product EMP × MGR × SCY × SAL × SAL
    (selected and projected afterwards), for comparison against the
    bounded-variable join plan.
    """
    from repro.algebra.ops import (
        CrossProduct,
        Project,
        RelationScan,
        Select,
        column_eq,
    )

    product = CrossProduct(
        (
            RelationScan("EMP", 2),    # columns 0: emp, 1: dept
            RelationScan("MGR", 2),    # columns 2: dept, 3: mgr
            RelationScan("SCY", 2),    # columns 4: mgr, 5: scy
            RelationScan("SAL", 2),    # columns 6: scy, 7: scy-salary
            RelationScan("SAL", 2),    # columns 8: emp, 9: emp-salary
            RelationScan("LT", 2),     # columns 10: lo, 11: hi
        )
    )
    selected = Select(
        product,
        (
            column_eq(1, 2),    # EMP.dept = MGR.dept
            column_eq(3, 4),    # MGR.mgr = SCY.mgr
            column_eq(5, 6),    # SCY.scy = SAL.emp (secretary's row)
            column_eq(0, 8),    # EMP.emp = SAL.emp (employee's row)
            column_eq(9, 10),   # employee salary = LT.lo
            column_eq(7, 11),   # secretary salary = LT.hi
        ),
    )
    return Project(selected, (0,))


def earns_less_bounded_algebra():
    """The join/project plan with intermediates of arity at most 3.

    Follows the introduction's "better approach": join EMP with MGR and
    project to EMP-MGR, join with SCY to EMP-SCY, then join with the two
    SAL rows and LT, projecting eagerly.
    """
    from repro.algebra.ops import Join, Project, RelationScan, Rename

    emp = RelationScan("EMP", 2, columns=("emp", "dept"))
    mgr = RelationScan("MGR", 2, columns=("dept", "mgr"))
    emp_mgr = Project(Join(emp, mgr), ("emp", "mgr"), by_name=True)
    scy = RelationScan("SCY", 2, columns=("mgr", "scy"))
    emp_scy = Project(Join(emp_mgr, scy), ("emp", "scy"), by_name=True)
    scy_sal = RelationScan("SAL", 2, columns=("scy", "hi"))
    emp_scy_sal = Project(Join(emp_scy, scy_sal), ("emp", "hi"), by_name=True)
    emp_sal = RelationScan("SAL", 2, columns=("emp", "lo"))
    both = Join(emp_scy_sal, emp_sal)
    lt = RelationScan("LT", 2, columns=("lo", "hi"))
    return Project(Join(both, lt), ("emp",), by_name=True)
