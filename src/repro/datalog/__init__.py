"""A small Datalog engine (the substrate behind Prop 3.2's Path Systems).

The paper defines the reachable elements of a path system by the Datalog
program::

    P(x) ← S(x)
    P(x) ← Q(x, y, z), P(y), P(z)

This subpackage provides that machinery as a first-class component:
rules, stratified programs, semi-naive bottom-up evaluation over
:class:`repro.database.Database`, and a translation of non-recursive
rule bodies into the library's FO formulas.  Datalog is also the natural
companion of FP^k: every Datalog program is a simultaneous least fixpoint
whose arities are bounded by the rule-head arities.
"""

from repro.datalog.syntax import Atom, DatalogProgram, Rule, Term as DatalogTerm
from repro.datalog.engine import evaluate_program, semi_naive
from repro.datalog.parser import parse_program
from repro.datalog.stratified import (
    StratifiedProgram,
    evaluate_stratified,
    parse_stratified_program,
    stratify,
)

__all__ = [
    "Atom",
    "Rule",
    "DatalogProgram",
    "DatalogTerm",
    "evaluate_program",
    "semi_naive",
    "parse_program",
    "StratifiedProgram",
    "stratify",
    "evaluate_stratified",
    "parse_stratified_program",
]
