"""Translating single-IDB Datalog programs into FP queries.

A program whose rules all define one predicate ``P`` is exactly a least
fixpoint::

    [lfp P(x̄). ⋁_rules ∃(body vars \\ x̄) (⋀ body atoms)](x̄)

with the rule variables standardized to the head pattern.  This is the
bridge the paper crosses in Prop 3.2 (the Path Systems program becomes an
FO/FP query); the resulting formula's fixpoint arity equals the program's
head arity, so bounded-arity Datalog lands in FP^k.

Multi-IDB programs need simultaneous fixpoints, which FP can simulate
only with arity blow-up (the Gurevich-Shelah collapse the paper's §3.2
discusses); this translator deliberately supports the single-IDB case and
rejects the rest.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.errors import ReductionError
from repro.core.engine import Query
from repro.logic.builders import and_, atom as fo_atom, exists, or_
from repro.logic.syntax import Const, Equals, Formula, Var
from repro.datalog.syntax import DatalogVar, DatalogProgram


def _term_to_fo(term, mapping: Dict[str, str]):
    if isinstance(term, DatalogVar):
        return Var(mapping[term.name])
    return Const(term.value)


def program_to_fp_query(program: DatalogProgram) -> Query:
    """The lfp query equivalent to a single-IDB Datalog program."""
    idb = program.idb_predicates()
    if len(idb) != 1:
        raise ReductionError(
            f"the FP translation handles single-IDB programs; this one "
            f"defines {sorted(idb)}"
        )
    predicate = next(iter(idb))
    arity = program.arity_of(predicate)
    head_vars = [f"h{i}" for i in range(arity)]
    disjuncts: List[Formula] = []
    for rule in program.rules:
        mapping: Dict[str, str] = {}
        constraints: List[Formula] = []
        # head terms align with the fixpoint's bound variables
        for i, term in enumerate(rule.head.terms):
            if isinstance(term, DatalogVar):
                if term.name in mapping:
                    constraints.append(
                        Equals(Var(mapping[term.name]), Var(head_vars[i]))
                    )
                else:
                    mapping[term.name] = head_vars[i]
            else:
                constraints.append(Equals(Var(head_vars[i]), Const(term.value)))
        # body variables not in the head get fresh names
        counter = itertools.count()
        for body_atom in rule.body:
            for term in body_atom.terms:
                if isinstance(term, DatalogVar) and term.name not in mapping:
                    mapping[term.name] = f"b{next(counter)}_{len(disjuncts)}"
        body_atoms = [
            fo_atom(
                b.predicate, *(_term_to_fo(t, mapping) for t in b.terms)
            )
            for b in rule.body
        ]
        matrix = and_(*(constraints + body_atoms)) if (
            constraints or body_atoms
        ) else _true()
        bound_here = sorted(
            set(mapping.values()) - set(head_vars)
        )
        disjuncts.append(exists(bound_here, matrix) if bound_here else matrix)
    from repro.logic.builders import lfp

    body = or_(*disjuncts) if disjuncts else _false()
    formula = lfp(predicate, head_vars, body, head_vars)
    return Query(formula, output_vars=tuple(head_vars), name=f"datalog-{predicate}")


def _true():
    from repro.logic.builders import true_

    return true_()


def _false():
    from repro.logic.builders import false_

    return false_()
