"""Bottom-up Datalog evaluation: naive and semi-naive.

Both compute the simultaneous least fixpoint of the program over the
database's EDB relations.  Semi-naive evaluation only joins rule bodies
against *newly derived* tuples each round — the standard optimization,
and the Datalog cousin of the paper's warm-started fixpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.datalog.syntax import Atom, DatalogConst, DatalogProgram, Rule
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.provenance import NULL_STAGE_LOG, StageLogLike
from repro.obs.tracer import NULL_TRACER, TracerLike

Row = Tuple[object, ...]


@dataclass
class DatalogStats:
    """Work counters for the two evaluation modes."""

    rounds: int = 0
    rule_firings: int = 0
    tuples_derived: int = 0


def _match_atom(
    atom: Atom,
    rows: FrozenSet[Row],
    binding: Dict[str, object],
) -> List[Dict[str, object]]:
    """All extensions of ``binding`` that match ``atom`` against ``rows``."""
    out = []
    for row in rows:
        candidate = dict(binding)
        ok = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, DatalogConst):
                if term.value != value:
                    ok = False
                    break
            else:
                bound = candidate.get(term.name, _MISSING)
                if bound is _MISSING:
                    candidate[term.name] = value
                elif bound != value:
                    ok = False
                    break
        if ok:
            out.append(candidate)
    return out


_MISSING = object()


def _instantiate_head(head: Atom, binding: Dict[str, object]) -> Row:
    row = []
    for term in head.terms:
        if isinstance(term, DatalogConst):
            row.append(term.value)
        else:
            row.append(binding[term.name])
    return tuple(row)


def _relation_rows(
    predicate: str,
    arity: int,
    db: Database,
    idb: Dict[str, Set[Row]],
) -> FrozenSet[Row]:
    if predicate in idb:
        return frozenset(idb[predicate])
    try:
        relation = db.relation(predicate)
    except Exception as exc:
        raise EvaluationError(
            f"EDB predicate {predicate!r} not found in the database"
        ) from exc
    if relation.arity != arity:
        raise EvaluationError(
            f"predicate {predicate!r}: program arity {arity} != database "
            f"arity {relation.arity}"
        )
    return relation.tuples


def _fire_rule(
    rule: Rule,
    db: Database,
    idb: Dict[str, Set[Row]],
    stats: DatalogStats,
    delta: Optional[Dict[str, Set[Row]]] = None,
) -> Set[Row]:
    """All head tuples derivable by one rule.

    With ``delta`` given (semi-naive), at least one IDB body atom is
    constrained to the delta; each choice of the "delta position" is
    enumerated so no derivation is missed.
    """
    derived: Set[Row] = set()
    idb_positions = [
        i for i, atom in enumerate(rule.body) if atom.predicate in idb
    ]
    if delta is None or not idb_positions:
        position_choices = [None]
    else:
        position_choices = idb_positions
    for delta_position in position_choices:
        bindings = [dict()]
        for i, atom in enumerate(rule.body):
            if delta is not None and i == delta_position:
                rows = frozenset(delta.get(atom.predicate, set()))
            else:
                rows = _relation_rows(atom.predicate, atom.arity, db, idb)
            next_bindings: List[Dict[str, object]] = []
            for binding in bindings:
                next_bindings.extend(_match_atom(atom, rows, binding))
            bindings = next_bindings
            if not bindings:
                break
        stats.rule_firings += 1
        for binding in bindings:
            derived.add(_instantiate_head(rule.head, binding))
    return derived


def evaluate_program(
    program: DatalogProgram,
    db: Database,
    stats: Optional[DatalogStats] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Dict[str, Relation]:
    """Naive bottom-up evaluation: re-derive everything each round.

    Each round is a guarded iteration; the total IDB size is charged
    against the row budget per round.  ``observer`` optionally records
    the per-round IDB snapshots as one ``kind="datalog"`` solve whose
    stages are predicate → tuple-set dicts (see
    :meth:`repro.obs.provenance.SolveRecord.first_entry`).
    """
    stats = stats if stats is not None else DatalogStats()
    idb: Dict[str, Set[Row]] = {
        pred: set() for pred in program.idb_predicates()
    }
    if observer.enabled:
        observer.begin("<idb>", "datalog")
        observer.stage(0, _idb_snapshot(idb))
    changed = True
    while changed:
        stats.rounds += 1
        if guard.enabled:
            _charge_round(guard, stats, idb)
        if tracer.enabled:
            with tracer.span("datalog.round") as span:
                changed = _naive_round(program, db, idb, stats)
                span.set(
                    index=stats.rounds - 1,
                    total_tuples=sum(len(rows) for rows in idb.values()),
                )
        else:
            changed = _naive_round(program, db, idb, stats)
        if observer.enabled and changed:
            observer.stage(stats.rounds, _idb_snapshot(idb))
    result = {
        pred: Relation(program.arity_of(pred), rows)
        for pred, rows in idb.items()
    }
    if observer.enabled:
        observer.end(result)
    return result


def _idb_snapshot(idb: Dict[str, Set[Row]]) -> Dict[str, FrozenSet[Row]]:
    """An immutable copy of the IDB — the engines mutate it in place."""
    return {pred: frozenset(rows) for pred, rows in idb.items()}


def _charge_round(
    guard: GuardLike, stats: DatalogStats, idb: Dict[str, Set[Row]]
) -> None:
    """One round = one iteration charge plus a row-budget check on the IDB."""
    total = sum(len(rows) for rows in idb.values())
    guard.charge_iteration(rounds=stats.rounds, idb_tuples=total)
    guard.charge_rows(
        total, rounds=stats.rounds, tuples_derived=stats.tuples_derived
    )


def _naive_round(
    program: DatalogProgram,
    db: Database,
    idb: Dict[str, Set[Row]],
    stats: DatalogStats,
) -> bool:
    changed = False
    for rule in program.rules:
        for row in _fire_rule(rule, db, idb, stats):
            if row not in idb[rule.head.predicate]:
                idb[rule.head.predicate].add(row)
                stats.tuples_derived += 1
                changed = True
    return changed


def semi_naive(
    program: DatalogProgram,
    db: Database,
    stats: Optional[DatalogStats] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Dict[str, Relation]:
    """Semi-naive evaluation: join against the per-round deltas only.

    Guarded identically to :func:`evaluate_program`: every round charges
    one iteration and re-checks the IDB against the row budget.  The
    ``observer`` stage record additionally carries the per-round delta
    dicts (the newly derived tuples per predicate).
    """
    stats = stats if stats is not None else DatalogStats()
    idb: Dict[str, Set[Row]] = {
        pred: set() for pred in program.idb_predicates()
    }
    if observer.enabled:
        observer.begin("<idb>", "datalog")
        observer.stage(0, _idb_snapshot(idb))

    def seed_round() -> Dict[str, Set[Row]]:
        # round 0: rules fired with empty IDB (facts and EDB-only rules)
        delta: Dict[str, Set[Row]] = {pred: set() for pred in idb}
        for rule in program.rules:
            for row in _fire_rule(rule, db, idb, stats):
                if row not in idb[rule.head.predicate]:
                    idb[rule.head.predicate].add(row)
                    delta[rule.head.predicate].add(row)
                    stats.tuples_derived += 1
        return delta

    def delta_round(delta: Dict[str, Set[Row]]) -> Dict[str, Set[Row]]:
        next_delta: Dict[str, Set[Row]] = {pred: set() for pred in idb}
        for rule in program.rules:
            for row in _fire_rule(rule, db, idb, stats, delta=delta):
                if row not in idb[rule.head.predicate]:
                    idb[rule.head.predicate].add(row)
                    next_delta[rule.head.predicate].add(row)
                    stats.tuples_derived += 1
        return next_delta

    stats.rounds += 1
    if guard.enabled:
        _charge_round(guard, stats, idb)
    if tracer.enabled:
        with tracer.span("datalog.round") as span:
            delta = seed_round()
            span.set(
                index=0, delta=sum(len(rows) for rows in delta.values())
            )
    else:
        delta = seed_round()
    if observer.enabled and any(delta.values()):
        observer.stage(1, _idb_snapshot(idb), delta=_idb_snapshot(delta))
    while any(delta.values()):
        stats.rounds += 1
        if guard.enabled:
            _charge_round(guard, stats, idb)
        if tracer.enabled:
            with tracer.span("datalog.round") as span:
                delta = delta_round(delta)
                span.set(
                    index=stats.rounds - 1,
                    delta=sum(len(rows) for rows in delta.values()),
                )
        else:
            delta = delta_round(delta)
        if observer.enabled and any(delta.values()):
            observer.stage(
                stats.rounds, _idb_snapshot(idb), delta=_idb_snapshot(delta)
            )
    result = {
        pred: Relation(program.arity_of(pred), rows)
        for pred, rows in idb.items()
    }
    if observer.enabled:
        observer.end(result)
    return result
