"""Parser for a conventional Datalog surface syntax.

Example::

    reach(X) :- source(X).
    reach(X) :- edge(Y, X), reach(Y).

Variables start with an uppercase letter, constants are integers or
quoted strings, ``%`` starts a comment, rules end with ``.``.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.errors import SyntaxError_
from repro.datalog.syntax import Atom, DatalogConst, DatalogProgram, DatalogVar, Rule

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<op>:-|[(),.])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SyntaxError_(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(_Token(match.lastgroup, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def parse_program(text: str) -> DatalogProgram:
    """Parse a whole program (possibly empty)."""
    parser = _DatalogParser(_tokenize(text))
    rules = []
    while not parser.at_eof():
        rules.append(parser.rule())
    return DatalogProgram(tuple(rules))


class _DatalogParser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, op: str) -> None:
        token = self._peek()
        if token.kind != "op" or token.text != op:
            raise SyntaxError_(
                f"expected {op!r} at position {token.pos}, "
                f"found {token.text!r}"
            )
        self._advance()

    def at_eof(self) -> bool:
        return self._peek().kind == "eof"

    def rule(self) -> Rule:
        head = self.atom()
        token = self._peek()
        body = []
        if token.kind == "op" and token.text == ":-":
            self._advance()
            body.append(self.atom())
            while self._peek().kind == "op" and self._peek().text == ",":
                self._advance()
                body.append(self.atom())
        self._expect(".")
        return Rule(head, tuple(body))

    def atom(self) -> Atom:
        token = self._peek()
        if token.kind != "name":
            raise SyntaxError_(
                f"expected a predicate at position {token.pos}, "
                f"found {token.text!r}"
            )
        predicate = self._advance().text
        terms = []
        self._expect("(")
        if not (self._peek().kind == "op" and self._peek().text == ")"):
            terms.append(self.term())
            while self._peek().kind == "op" and self._peek().text == ",":
                self._advance()
                terms.append(self.term())
        self._expect(")")
        return Atom(predicate, tuple(terms))

    def term(self):
        token = self._peek()
        if token.kind == "name":
            self._advance()
            if token.text[0].isupper() or token.text[0] == "_":
                return DatalogVar(token.text)
            return DatalogConst(token.text)
        if token.kind == "int":
            self._advance()
            return DatalogConst(int(token.text))
        if token.kind == "string":
            self._advance()
            raw = token.text[1:-1]
            return DatalogConst(raw.replace("\\'", "'").replace("\\\\", "\\"))
        raise SyntaxError_(
            f"expected a term at position {token.pos}, found {token.text!r}"
        )
