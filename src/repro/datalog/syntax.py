"""Datalog abstract syntax: terms, atoms, rules, programs.

Pure positive Datalog (no negation): a program is a set of rules
``head ← body_1, ..., body_m`` whose head predicates are the *intensional*
(IDB) relations; predicates only occurring in bodies are *extensional*
(EDB) and come from the database.  Safety — every head variable occurs in
the body — is checked at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Tuple, Union

from repro.errors import SyntaxError_


@dataclass(frozen=True)
class DatalogVar:
    """A rule variable (uppercase-first by convention, not enforced)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SyntaxError_("datalog variable needs a name")


@dataclass(frozen=True)
class DatalogConst:
    """A constant value appearing in a rule."""

    value: Hashable


Term = Union[DatalogVar, DatalogConst]


@dataclass(frozen=True)
class Atom:
    """``pred(t_1, ..., t_m)``."""

    predicate: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.predicate:
            raise SyntaxError_("atom needs a predicate name")
        for term in self.terms:
            if not isinstance(term, (DatalogVar, DatalogConst)):
                raise SyntaxError_(f"bad term {term!r} in atom")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> FrozenSet[str]:
        return frozenset(
            t.name for t in self.terms if isinstance(t, DatalogVar)
        )


@dataclass(frozen=True)
class Rule:
    """``head ← body``; facts are rules with an empty body."""

    head: Atom
    body: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        body_vars: FrozenSet[str] = frozenset().union(
            *(atom.variables() for atom in self.body)
        ) if self.body else frozenset()
        unsafe = self.head.variables() - body_vars
        if unsafe:
            raise SyntaxError_(
                f"unsafe rule: head variables {sorted(unsafe)} do not occur "
                f"in the body"
            )

    def is_fact(self) -> bool:
        return not self.body


@dataclass(frozen=True)
class DatalogProgram:
    """An ordered collection of rules."""

    rules: Tuple[Rule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        arities = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                seen = arities.get(atom.predicate)
                if seen is None:
                    arities[atom.predicate] = atom.arity
                elif seen != atom.arity:
                    raise SyntaxError_(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{seen} and {atom.arity}"
                    )

    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by some rule head."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates only read (must come from the database)."""
        idb = self.idb_predicates()
        out = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in idb:
                    out.add(atom.predicate)
        return frozenset(out)

    def arity_of(self, predicate: str) -> int:
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                if atom.predicate == predicate:
                    return atom.arity
        raise SyntaxError_(f"unknown predicate {predicate!r}")

    def max_idb_arity(self) -> int:
        """The k that bounds this program's intermediate arities."""
        return max(
            (rule.head.arity for rule in self.rules), default=0
        )
