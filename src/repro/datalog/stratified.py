"""Stratified Datalog: negation without losing the least-model semantics.

Rules may negate body atoms (``Literal(atom, negated=True)``) as long as
no predicate depends on its own negation: the predicate dependency graph
must have no cycle through a negative edge.  Evaluation splits the
program into *strata* evaluated bottom-up; within a stratum the positive
semi-naive engine runs with all lower strata (and the EDB) frozen, and a
negated atom succeeds when no frozen tuple matches.

This is the classical perfect-model construction; it is also the Datalog
face of the paper's stratification discussions (FP's positivity
requirement is the one-stratum case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import EvaluationError, SyntaxError_
from repro.datalog.engine import DatalogStats, _MISSING, _instantiate_head
from repro.datalog.syntax import Atom, DatalogConst, DatalogVar


@dataclass(frozen=True)
class Literal:
    """A possibly negated body atom."""

    atom: Atom
    negated: bool = False

    def variables(self) -> FrozenSet[str]:
        return self.atom.variables()


@dataclass(frozen=True)
class StratifiedRule:
    """``head ← L_1, ..., L_m`` with literals.

    Safety: every head variable and every variable of a *negated* literal
    must occur in some positive literal (so negation is evaluated over
    ground tuples only).
    """

    head: Atom
    body: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        positive_vars: Set[str] = set()
        for literal in self.body:
            if not literal.negated:
                positive_vars |= literal.variables()
        unsafe_head = self.head.variables() - positive_vars
        if unsafe_head:
            raise SyntaxError_(
                f"unsafe rule: head variables {sorted(unsafe_head)} not "
                f"bound by a positive literal"
            )
        for literal in self.body:
            if literal.negated:
                loose = literal.variables() - positive_vars
                if loose:
                    raise SyntaxError_(
                        f"unsafe negation: variables {sorted(loose)} of "
                        f"~{literal.atom.predicate} not bound positively"
                    )


@dataclass(frozen=True)
class StratifiedProgram:
    """A collection of stratified rules."""

    rules: Tuple[StratifiedRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in [rule.head] + [l.atom for l in rule.body]:
                seen = arities.get(atom.predicate)
                if seen is None:
                    arities[atom.predicate] = atom.arity
                elif seen != atom.arity:
                    raise SyntaxError_(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{seen} and {atom.arity}"
                    )

    def idb_predicates(self) -> FrozenSet[str]:
        return frozenset(rule.head.predicate for rule in self.rules)

    def arity_of(self, predicate: str) -> int:
        for rule in self.rules:
            for atom in [rule.head] + [l.atom for l in rule.body]:
                if atom.predicate == predicate:
                    return atom.arity
        raise SyntaxError_(f"unknown predicate {predicate!r}")


def stratify(program: StratifiedProgram) -> List[FrozenSet[str]]:
    """Assign IDB predicates to strata; raise on negative recursion.

    Standard algorithm: stratum numbers grow along edges, strictly along
    negative edges; a strictly-growing cycle (negation through recursion)
    makes the numbers exceed the predicate count and is rejected.
    """
    idb = program.idb_predicates()
    stratum: Dict[str, int] = {p: 0 for p in idb}
    limit = len(idb) + 1
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head.predicate
            for literal in rule.body:
                body_pred = literal.atom.predicate
                if body_pred not in idb:
                    continue
                required = stratum[body_pred] + (1 if literal.negated else 0)
                if stratum[head] < required:
                    stratum[head] = required
                    if stratum[head] >= limit:
                        raise SyntaxError_(
                            f"program is not stratifiable: predicate "
                            f"{head!r} depends on its own negation"
                        )
                    changed = True
    layers: Dict[int, Set[str]] = {}
    for predicate, level in stratum.items():
        layers.setdefault(level, set()).add(predicate)
    return [frozenset(layers[level]) for level in sorted(layers)]


def _match_literal(
    literal: Literal,
    rows: FrozenSet[Tuple],
    bindings: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    for binding in bindings:
        if literal.negated:
            # safety guarantees the literal is ground under the binding
            ground = tuple(
                term.value if isinstance(term, DatalogConst) else binding[term.name]
                for term in literal.atom.terms
            )
            if ground not in rows:
                out.append(binding)
            continue
        for row in rows:
            candidate = dict(binding)
            ok = True
            for term, value in zip(literal.atom.terms, row):
                if isinstance(term, DatalogConst):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = candidate.get(term.name, _MISSING)
                    if bound is _MISSING:
                        candidate[term.name] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                out.append(candidate)
    return out


def evaluate_stratified(
    program: StratifiedProgram,
    db: Database,
    stats: Optional[DatalogStats] = None,
) -> Dict[str, Relation]:
    """The perfect model: strata evaluated bottom-up, semi-naive style."""
    stats = stats if stats is not None else DatalogStats()
    strata = stratify(program)
    idb: Dict[str, Set[Tuple]] = {
        pred: set() for pred in program.idb_predicates()
    }

    def rows_of(predicate: str, arity: int) -> FrozenSet[Tuple]:
        if predicate in idb:
            return frozenset(idb[predicate])
        relation = db.relation(predicate)
        if relation.arity != arity:
            raise EvaluationError(
                f"predicate {predicate!r}: program arity {arity} != "
                f"database arity {relation.arity}"
            )
        return relation.tuples

    for layer in strata:
        layer_rules = [
            rule for rule in program.rules if rule.head.predicate in layer
        ]
        # positive literals on the current layer make this a fixpoint;
        # negated literals never target the current layer (stratification)
        changed = True
        while changed:
            stats.rounds += 1
            changed = False
            for rule in layer_rules:
                bindings: List[Dict[str, object]] = [dict()]
                # evaluate positive literals first so negation is ground
                ordered = sorted(rule.body, key=lambda l: l.negated)
                for literal in ordered:
                    rows = rows_of(
                        literal.atom.predicate, literal.atom.arity
                    )
                    bindings = _match_literal(literal, rows, bindings)
                    if not bindings:
                        break
                stats.rule_firings += 1
                for binding in bindings:
                    row = _instantiate_head(rule.head, binding)
                    if row not in idb[rule.head.predicate]:
                        idb[rule.head.predicate].add(row)
                        stats.tuples_derived += 1
                        changed = True
    return {
        pred: Relation(program.arity_of(pred), rows)
        for pred, rows in idb.items()
    }


def parse_stratified_program(text: str) -> StratifiedProgram:
    """Parse the surface syntax extended with ``not`` before a body atom.

    Example::

        unreachable(X) :- node(X), not reach(X).
    """
    from repro.datalog.parser import _DatalogParser, _tokenize

    class _Parser(_DatalogParser):
        def rule(self):
            head = self.atom()
            token = self._peek()
            body: List[Literal] = []
            if token.kind == "op" and token.text == ":-":
                self._advance()
                body.append(self._literal())
                while self._peek().kind == "op" and self._peek().text == ",":
                    self._advance()
                    body.append(self._literal())
            self._expect(".")
            return StratifiedRule(head, tuple(body))

        def _literal(self) -> Literal:
            token = self._peek()
            if token.kind == "name" and token.text == "not":
                self._advance()
                return Literal(self.atom(), negated=True)
            return Literal(self.atom(), negated=False)

    parser = _Parser(_tokenize(text))
    rules = []
    while not parser.at_eof():
        rules.append(parser.rule())
    return StratifiedProgram(tuple(rules))
