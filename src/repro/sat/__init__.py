"""A from-scratch SAT stack: CNF, Tseitin transform, DPLL solver.

This is the NP "oracle" behind the ESO^k engine (Corollary 3.7) and the
SAT side of the Theorem 4.5 lower bound.  It is deliberately small and
dependency-free:

* :mod:`~repro.sat.cnf` — literals, clauses, CNF formulas, propositional
  formula trees;
* :mod:`~repro.sat.tseitin` — structure-preserving CNF conversion;
* :mod:`~repro.sat.dpll` — a DPLL solver with unit propagation and a
  simple activity heuristic;
* :mod:`~repro.sat.dimacs` — DIMACS import/export for interoperability.
"""

from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    Clause,
    CNF,
    PropFormula,
)
from repro.sat.dpll import SatResult, solve
from repro.sat.tseitin import to_cnf

__all__ = [
    "BoolVar",
    "BoolConst",
    "BoolNot",
    "BoolAnd",
    "BoolOr",
    "PropFormula",
    "Clause",
    "CNF",
    "to_cnf",
    "solve",
    "SatResult",
]
