"""DIMACS CNF import/export.

The standard interchange format, so grounded ESO^k instances can be
inspected with external tools and external benchmarks can be fed to the
library's solver.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sat.cnf import CNF, CnfError


def to_dimacs(cnf: CNF, comments: Iterable[str] = ()) -> str:
    """Serialize to the DIMACS ``p cnf`` format."""
    lines: List[str] = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> CNF:
    """Parse a DIMACS ``p cnf`` document into a :class:`CNF`.

    Variable ``i`` is registered under the name ``i`` (an int).
    """
    cnf = CNF()
    declared_vars = None
    declared_clauses = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise CnfError(f"malformed problem line: {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError:
                raise CnfError(f"malformed problem line: {line!r}") from None
            if declared_vars < 0 or declared_clauses < 0:
                raise CnfError(f"negative counts in problem line: {line!r}")
            for i in range(1, declared_vars + 1):
                cnf.var(i)
            continue
        if declared_vars is None:
            raise CnfError("clause before the 'p cnf' problem line")
        try:
            literals = [int(tok) for tok in line.split()]
        except ValueError:
            raise CnfError(f"malformed clause line: {line!r}") from None
        if not literals or literals[-1] != 0:
            raise CnfError(f"clause line must end with 0: {line!r}")
        body = literals[:-1]
        for lit in body:
            if abs(lit) > declared_vars:
                raise CnfError(
                    f"literal {lit} exceeds declared variable count "
                    f"{declared_vars}"
                )
        cnf.add_clause(body)
    if declared_vars is None:
        raise CnfError("missing 'p cnf' problem line")
    if declared_clauses is not None and cnf.num_clauses > declared_clauses:
        # tautological clauses are dropped on input, so fewer is fine
        raise CnfError(
            f"more clauses ({cnf.num_clauses}) than declared "
            f"({declared_clauses})"
        )
    return cnf
