"""Tseitin transformation: propositional formulas → equisatisfiable CNF.

Each internal connective gets a definition variable; the output CNF has
size linear in the formula, which is what keeps the ESO^k grounding
(Corollary 3.7) polynomial in ``|B| + |e|``.  Shared subformulas (the
grounder reuses node objects heavily) are translated once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    CNF,
    CnfError,
    PropFormula,
)


def to_cnf(
    formula: PropFormula,
    cnf: CNF = None,
    tracer: TracerLike = NULL_TRACER,
) -> Tuple[CNF, int]:
    """Translate ``formula`` and assert it; returns ``(cnf, root_literal)``.

    The returned CNF is satisfiable iff the formula is, and any model of
    the CNF restricted to the original variables is a model of the
    formula.  Passing an existing ``cnf`` accumulates several assertions
    into one problem (conjunction).
    """
    if cnf is None:
        cnf = CNF()
    if tracer.enabled:
        with tracer.span("eso.tseitin") as span:
            converter = _Tseitin(cnf)
            root = converter.literal(formula)
            cnf.add_clause([root])
            span.set(variables=cnf.num_vars, clauses=cnf.num_clauses)
            return cnf, root
    converter = _Tseitin(cnf)
    root = converter.literal(formula)
    cnf.add_clause([root])
    return cnf, root


class _Tseitin:
    def __init__(self, cnf: CNF):
        self._cnf = cnf
        self._cache: Dict[int, int] = {}
        self._true_lit: int = 0

    def _true(self) -> int:
        """A literal constrained to be true (allocated on demand)."""
        if self._true_lit == 0:
            self._true_lit = self._cnf.fresh_var("true")
            self._cnf.add_clause([self._true_lit])
        return self._true_lit

    def literal(self, formula: PropFormula) -> int:
        cached = self._cache.get(id(formula))
        if cached is not None:
            return cached
        lit = self._translate(formula)
        self._cache[id(formula)] = lit
        return lit

    def _translate(self, formula: PropFormula) -> int:
        cnf = self._cnf
        if isinstance(formula, BoolVar):
            return cnf.var(formula.name)
        if isinstance(formula, BoolConst):
            true = self._true()
            return true if formula.value else -true
        if isinstance(formula, BoolNot):
            return -self.literal(formula.sub)
        if isinstance(formula, BoolAnd):
            if not formula.subs:
                return self._true()
            parts = [self.literal(s) for s in formula.subs]
            out = cnf.fresh_var("and")
            for part in parts:
                cnf.add_clause([-out, part])         # out -> part
            cnf.add_clause([out] + [-p for p in parts])  # all parts -> out
            return out
        if isinstance(formula, BoolOr):
            if not formula.subs:
                return -self._true()
            parts = [self.literal(s) for s in formula.subs]
            out = cnf.fresh_var("or")
            for part in parts:
                cnf.add_clause([out, -part])         # part -> out
            cnf.add_clause([-out] + parts)           # out -> some part
            return out
        raise CnfError(f"unknown propositional node {formula!r}")
