"""A DPLL SAT solver with unit propagation and activity-guided branching.

Iterative (explicit trail, no recursion) so deep problems cannot blow the
Python stack.  Good enough for the grounded ESO^k instances and the
Theorem 4.5 reductions this library generates; it is a decision procedure,
not a competition solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.sat.cnf import CNF


@dataclass
class SatResult:
    """Outcome of a solver run."""

    satisfiable: bool
    assignment: Dict[int, bool]
    decisions: int
    propagations: int

    def named_assignment(self, cnf: CNF) -> Dict[object, bool]:
        return cnf.decode(self.assignment)


def solve(
    cnf: CNF,
    assumptions: Sequence[int] = (),
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
) -> SatResult:
    """Decide satisfiability of ``cnf`` under optional assumption literals.

    ``guard`` makes the search interruptible: every decision is charged
    against the decision budget and every propagation pass is a
    cooperative checkpoint, so a deadline can cut an exponential search
    short with :class:`~repro.errors.DecisionBudgetExceeded` /
    :class:`~repro.errors.DeadlineExceeded`.
    """
    if tracer.enabled:
        with tracer.span(
            "eso.dpll", variables=cnf.num_vars, clauses=cnf.num_clauses
        ) as span:
            result = _DPLL(cnf, guard=guard).run(list(assumptions))
            span.set(
                satisfiable=result.satisfiable,
                decisions=result.decisions,
                propagations=result.propagations,
            )
            return result
    solver = _DPLL(cnf, guard=guard)
    return solver.run(list(assumptions))


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class _DPLL:
    def __init__(self, cnf: CNF, guard: GuardLike = NULL_GUARD):
        self._guard = guard
        self._num_vars = cnf.num_vars
        self._clauses: List[Tuple[int, ...]] = [
            tuple(sorted(c.literals, key=abs)) for c in cnf.clauses
        ]
        # occurrence lists: literal -> clause indices containing it
        self._occurs: Dict[int, List[int]] = {}
        for ci, clause in enumerate(self._clauses):
            for lit in clause:
                self._occurs.setdefault(lit, []).append(ci)
        self._value = [_UNASSIGNED] * (self._num_vars + 1)
        self._trail: List[int] = []          # assigned literals in order
        self._trail_marks: List[int] = []    # trail length at each decision
        self._decisions = 0
        self._propagations = 0
        # static activity: frequency of each variable across clauses
        self._activity = [0] * (self._num_vars + 1)
        for clause in self._clauses:
            for lit in clause:
                self._activity[abs(lit)] += 1
        self._order = sorted(
            range(1, self._num_vars + 1),
            key=lambda v: -self._activity[v],
        )

    # -- assignment plumbing ---------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self._value[abs(lit)]
        return value if lit > 0 else -value

    def _assign(self, lit: int) -> None:
        self._value[abs(lit)] = _TRUE if lit > 0 else _FALSE
        self._trail.append(lit)

    def _unassign_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            lit = self._trail.pop()
            self._value[abs(lit)] = _UNASSIGNED

    # -- core loop ---------------------------------------------------------

    def run(self, assumptions: List[int]) -> SatResult:
        if any(not clause for clause in self._clauses):
            return SatResult(False, {}, 0, 0)
        for lit in assumptions:
            value = self._lit_value(lit)
            if value == _FALSE:
                return self._unsat()
            if value == _UNASSIGNED:
                self._assign(lit)
        if not self._propagate():
            return self._unsat()
        guard = self._guard
        while True:
            branch = self._pick_branch()
            if branch is None:
                return self._sat()
            self._decisions += 1
            if guard.enabled:
                guard.charge_decision(
                    decisions=self._decisions,
                    propagations=self._propagations,
                    trail=len(self._trail),
                )
            self._trail_marks.append(len(self._trail))
            self._assign(branch)
            while not self._propagate():
                # conflict: backtrack, flipping the most recent decision
                flipped = self._backtrack()
                if flipped is None:
                    return self._unsat()
                self._assign(flipped)

    def _pick_branch(self) -> Optional[int]:
        for var in self._order:
            if self._value[var] == _UNASSIGNED:
                return var  # positive phase first
        return None

    def _backtrack(self) -> Optional[int]:
        """Undo the most recent un-flipped decision; None when exhausted.

        Decisions are always positive literals; a flipped decision is
        recorded as a negative literal at its trail mark, so a decision
        whose literal is negative has already tried both phases.
        """
        while self._trail_marks:
            mark = self._trail_marks.pop()
            decision = self._trail[mark]
            self._unassign_to(mark)
            if decision > 0:
                self._trail_marks.append(mark)
                return -decision
        return None

    def _propagate(self) -> bool:
        """Exhaustive unit propagation; False on conflict."""
        guard = self._guard
        changed = True
        while changed:
            changed = False
            if guard.enabled:
                guard.checkpoint(
                    "dpll.propagate",
                    decisions=self._decisions,
                    propagations=self._propagations,
                )
            for ci, clause in enumerate(self._clauses):
                status = self._clause_status(clause)
                if status == "conflict":
                    return False
                if isinstance(status, int):
                    self._assign(status)
                    self._propagations += 1
                    changed = True
        return True

    def _clause_status(self, clause: Tuple[int, ...]):
        """'sat', 'conflict', 'open', or the unit literal to assign."""
        unassigned: Optional[int] = None
        count = 0
        for lit in clause:
            value = self._lit_value(lit)
            if value == _TRUE:
                return "sat"
            if value == _UNASSIGNED:
                unassigned = lit
                count += 1
                if count > 1:
                    return "open"
        if count == 0:
            return "conflict"
        return unassigned

    def _sat(self) -> SatResult:
        assignment = {
            v: self._value[v] == _TRUE
            for v in range(1, self._num_vars + 1)
            if self._value[v] != _UNASSIGNED
        }
        return SatResult(True, assignment, self._decisions, self._propagations)

    def _unsat(self) -> SatResult:
        return SatResult(False, {}, self._decisions, self._propagations)
