"""Propositional formulas and CNF.

Variables are identified by arbitrary hashable *names* (the ESO grounder
uses tuples like ``("S", (0, 1))`` meaning "tuple (0,1) is in relation S");
the solver works on integer-indexed literals internally, and :class:`CNF`
maintains the name↔index mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import ReproError

VarName = Hashable


class CnfError(ReproError):
    """Malformed propositional input."""


# ---------------------------------------------------------------------------
# Propositional formula trees (input to Tseitin)
# ---------------------------------------------------------------------------


class PropFormula:
    """Base class for propositional formula nodes."""

    def __and__(self, other: "PropFormula") -> "PropFormula":
        return BoolAnd((self, other))

    def __or__(self, other: "PropFormula") -> "PropFormula":
        return BoolOr((self, other))

    def __invert__(self) -> "PropFormula":
        return BoolNot(self)


@dataclass(frozen=True)
class BoolVar(PropFormula):
    """A propositional variable with an arbitrary hashable name."""

    name: VarName


@dataclass(frozen=True)
class BoolConst(PropFormula):
    """True / False."""

    value: bool


@dataclass(frozen=True)
class BoolNot(PropFormula):
    sub: PropFormula


@dataclass(frozen=True)
class BoolAnd(PropFormula):
    subs: Tuple[PropFormula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))


@dataclass(frozen=True)
class BoolOr(PropFormula):
    subs: Tuple[PropFormula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "subs", tuple(self.subs))


# ---------------------------------------------------------------------------
# CNF
# ---------------------------------------------------------------------------


Literal = int  # DIMACS convention: +v / -v, v >= 1


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals (integers, DIMACS sign convention)."""

    literals: FrozenSet[Literal]

    def __post_init__(self) -> None:
        lits = frozenset(self.literals)
        if 0 in lits:
            raise CnfError("literal 0 is not allowed")
        object.__setattr__(self, "literals", lits)

    def is_tautology(self) -> bool:
        return any(-lit in self.literals for lit in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self.literals, key=abs))


class CNF:
    """A conjunction of clauses plus a variable-name registry.

    >>> cnf = CNF()
    >>> x, y = cnf.var("x"), cnf.var("y")
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x])
    >>> cnf.num_vars, cnf.num_clauses
    (2, 2)
    """

    def __init__(self) -> None:
        self._clauses: List[Clause] = []
        self._name_to_index: Dict[VarName, int] = {}
        self._index_to_name: List[VarName] = []

    # -- variables -------------------------------------------------------

    def var(self, name: VarName) -> int:
        """The positive literal for ``name``, allocating it if new."""
        index = self._name_to_index.get(name)
        if index is None:
            index = len(self._index_to_name) + 1
            self._name_to_index[name] = index
            self._index_to_name.append(name)
        return index

    def fresh_var(self, hint: str = "aux") -> int:
        """A variable guaranteed not to clash with any named variable."""
        return self.var(("_fresh", hint, len(self._index_to_name)))

    def has_var(self, name: VarName) -> bool:
        return name in self._name_to_index

    def name_of(self, index: int) -> VarName:
        if not 1 <= index <= len(self._index_to_name):
            raise CnfError(f"variable index {index} out of range")
        return self._index_to_name[index - 1]

    @property
    def num_vars(self) -> int:
        return len(self._index_to_name)

    # -- clauses ----------------------------------------------------------

    def add_clause(self, literals: Iterable[Literal]) -> None:
        clause = Clause(frozenset(literals))
        for lit in clause.literals:
            if abs(lit) > len(self._index_to_name):
                raise CnfError(
                    f"literal {lit} references an unallocated variable"
                )
        if not clause.is_tautology():
            self._clauses.append(clause)

    def add_named_clause(
        self, positives: Iterable[VarName], negatives: Iterable[VarName]
    ) -> None:
        """Add a clause given by variable names instead of literals."""
        literals = [self.var(name) for name in positives]
        literals += [-self.var(name) for name in negatives]
        self.add_clause(literals)

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return tuple(self._clauses)

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def total_literals(self) -> int:
        """Encoding-size proxy: the sum of clause lengths."""
        return sum(len(c) for c in self._clauses)

    def decode(self, assignment: Dict[int, bool]) -> Dict[VarName, bool]:
        """Map a solver assignment back to variable names."""
        return {
            self._index_to_name[i - 1]: assignment.get(i, False)
            for i in range(1, self.num_vars + 1)
        }

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"
