"""Resource budgets and the cooperative checkpoint guard.

The paper's central claim is that bounding variables bounds every
intermediate relation to ``n^k`` — this module turns those bounds into
*enforced runtime invariants*.  A :class:`Budget` declares limits for the
quantities the paper bounds:

==================  ====================================================
``max_rows``        intermediate relation rows — Prop 3.1's ``n^k``
``max_iterations``  fixpoint/round iterations — Theorem 3.8's ``2^{n^k}``
``max_states``      PFP cycle-detection states (also ≤ ``2^{n^k}``)
``max_clauses``     grounded nodes / CNF clauses — Corollary 3.7's size
``max_decisions``   DPLL decisions (the NP oracle's work)
``deadline_seconds``  wall-clock, the catch-all
==================  ====================================================

A :class:`ResourceGuard` is the runtime half: engines call its cheap
``charge_*`` methods from their hot loops (each charge is also a
*checkpoint* — a cooperative cancellation point where the deadline is
checked and fault injection may fire).  Exhausting a budget raises the
matching :class:`~repro.errors.ResourceExhausted` subclass carrying the
partial progress supplied by the engine plus a snapshot of the unified
metrics registry.

The shared no-op :data:`NULL_GUARD` keeps unguarded runs free: the hot
paths gate their charge calls on ``guard.enabled`` exactly like the
tracer convention of :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.errors import (
    ClauseBudgetExceeded,
    DeadlineExceeded,
    DecisionBudgetExceeded,
    IterationBudgetExceeded,
    ResourceExhausted,
    SpaceBudgetExceeded,
    StateBudgetExceeded,
)
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits; ``None`` means unlimited.

    Budgets are immutable and shareable — all mutable accounting lives on
    the :class:`ResourceGuard` built from one.
    """

    deadline_seconds: Optional[float] = None
    max_iterations: Optional[int] = None
    max_rows: Optional[int] = None
    max_decisions: Optional[int] = None
    max_clauses: Optional[int] = None
    max_states: Optional[int] = None

    def is_unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_iterations is None
            and self.max_rows is None
            and self.max_decisions is None
            and self.max_clauses is None
            and self.max_states is None
        )


class NullGuard:
    """Shared no-op guard; ``enabled`` is False so hot paths skip work."""

    enabled = False
    __slots__ = ()

    def checkpoint(self, where: str = "") -> None:
        pass

    def charge_iteration(self, amount: int = 1, **partial: object) -> None:
        pass

    def charge_rows(self, rows: int, **partial: object) -> None:
        pass

    def charge_decision(self, amount: int = 1, **partial: object) -> None:
        pass

    def charge_clauses(self, amount: int = 1, **partial: object) -> None:
        pass

    def charge_state(self, amount: int = 1, **partial: object) -> None:
        pass

    def try_charge_state(self, amount: int = 1) -> bool:
        return True

    def reset_clauses(self) -> None:
        pass

    def reset(self) -> None:
        pass

    def remaining_seconds(self) -> Optional[float]:
        return None

    def snapshot(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return "NULL_GUARD"


#: The shared no-op guard used by default everywhere.
NULL_GUARD = NullGuard()


class ResourceGuard:
    """Mutable budget accounting with cooperative checkpoints.

    Parameters
    ----------
    budget:
        The limits to enforce (an unlimited :class:`Budget` when omitted —
        useful for chaos-only guards).
    registry:
        The run's unified metrics registry.  Guard counters are registered
        under ``guard.*`` so exception snapshots and trace reports show
        them alongside the engine metrics; a private registry is created
        when omitted.
    chaos:
        Optional :class:`~repro.guard.chaos.ChaosPolicy`; its hooks fire
        at every checkpoint (deterministically, for unwind testing).
    check_interval:
        Check the wall clock every this many checkpoints.  The default of
        1 checks every time (``time.monotonic`` is a few tens of ns);
        raise it for extremely hot loops.
    clock:
        Injectable monotonic clock, for deterministic deadline tests.
    """

    enabled = True

    __slots__ = (
        "budget",
        "registry",
        "_chaos",
        "_clock",
        "_interval",
        "_checkpoints",
        "_iterations",
        "_decisions",
        "_clauses_total",
        "_states",
        "_peak_rows",
        "_stage_clauses",
        "_started",
        "_deadline",
    )

    def __init__(
        self,
        budget: Optional[Budget] = None,
        registry: Optional[MetricsRegistry] = None,
        chaos: Optional[object] = None,
        check_interval: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget if budget is not None else Budget()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._chaos = chaos
        self._clock = clock
        self._interval = max(1, check_interval)
        self._checkpoints = self.registry.counter("guard.checkpoints")
        self._iterations = self.registry.counter("guard.iterations")
        self._decisions = self.registry.counter("guard.decisions")
        self._clauses_total = self.registry.counter("guard.clauses")
        self._states = self.registry.counter("guard.states")
        self._peak_rows = self.registry.gauge("guard.peak_rows")
        self._stage_clauses = 0
        self._started = clock()
        self._deadline = (
            self._started + self.budget.deadline_seconds
            if self.budget.deadline_seconds is not None
            else None
        )

    # -- readings --------------------------------------------------------

    @property
    def checkpoints(self) -> int:
        return self._checkpoints.value

    @property
    def iterations(self) -> int:
        return self._iterations.value

    @property
    def decisions(self) -> int:
        return self._decisions.value

    @property
    def clauses(self) -> int:
        """Clauses charged in the current stage (see :meth:`reset_clauses`)."""
        return self._stage_clauses

    @property
    def states(self) -> int:
        return self._states.value

    @property
    def peak_rows(self) -> int:
        return self._peak_rows.value

    def elapsed_seconds(self) -> float:
        return self._clock() - self._started

    def remaining_seconds(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def snapshot(self) -> Dict[str, float]:
        """The guard's own accounting as a plain dict."""
        return {
            "checkpoints": self.checkpoints,
            "iterations": self.iterations,
            "decisions": self.decisions,
            "clauses": self._clauses_total.value,
            "states": self.states,
            "peak_rows": self.peak_rows,
            "elapsed_seconds": self.elapsed_seconds(),
        }

    # -- checkpoints and charges -----------------------------------------

    def checkpoint(self, where: str = "", **partial: object) -> None:
        """One cooperative cancellation point.

        Counts the call, runs fault injection (if configured), and checks
        the wall-clock deadline every ``check_interval`` calls.
        """
        self._checkpoints.value += 1
        if self._chaos is not None:
            self._chaos.on_checkpoint(self._checkpoints.value, where)
        if (
            self._deadline is not None
            and self._checkpoints.value % self._interval == 0
        ):
            now = self._clock()
            if now > self._deadline:
                self._exhaust(
                    DeadlineExceeded,
                    "deadline",
                    self.budget.deadline_seconds,
                    now - self._started,
                    f"deadline of {self.budget.deadline_seconds:g}s exceeded"
                    + (f" (at {where})" if where else ""),
                    partial,
                )

    def charge_iteration(self, amount: int = 1, **partial: object) -> None:
        """One fixpoint/round iteration (the ``2^{n^k}`` quantity)."""
        self._iterations.value += amount
        self.checkpoint("iteration", **partial)
        limit = self.budget.max_iterations
        if limit is not None and self._iterations.value > limit:
            self._exhaust(
                IterationBudgetExceeded,
                "iterations",
                limit,
                self._iterations.value,
                f"iteration budget of {limit} exceeded",
                partial,
            )

    def charge_rows(self, rows: int, **partial: object) -> None:
        """One intermediate relation of ``rows`` rows (the ``n^k`` bound).

        A high-water check, not a cumulative one: the paper bounds every
        *single* intermediate result, not their total.
        """
        if self._chaos is not None:
            rows += self._chaos.oversize_rows
        self._peak_rows.set_max(rows)
        self.checkpoint("rows", **partial)
        limit = self.budget.max_rows
        if limit is not None and rows > limit:
            self._exhaust(
                SpaceBudgetExceeded,
                "rows",
                limit,
                rows,
                f"intermediate relation of {rows} rows exceeds the "
                f"row budget of {limit}",
                partial,
            )

    def charge_decision(self, amount: int = 1, **partial: object) -> None:
        """One SAT decision."""
        self._decisions.value += amount
        self.checkpoint("decision", **partial)
        limit = self.budget.max_decisions
        if limit is not None and self._decisions.value > limit:
            self._exhaust(
                DecisionBudgetExceeded,
                "decisions",
                limit,
                self._decisions.value,
                f"SAT decision budget of {limit} exceeded",
                partial,
            )

    def charge_clauses(self, amount: int = 1, **partial: object) -> None:
        """``amount`` grounded nodes / CNF clauses (the Cor 3.7 size)."""
        self._clauses_total.value += amount
        self._stage_clauses += amount
        self.checkpoint("clauses", **partial)
        limit = self.budget.max_clauses
        if limit is not None and self._stage_clauses > limit:
            self._exhaust(
                ClauseBudgetExceeded,
                "clauses",
                limit,
                self._stage_clauses,
                f"grounded clause budget of {limit} exceeded",
                partial,
            )

    def reset_clauses(self) -> None:
        """Start a fresh clause-budget stage.

        The ESO degradation ladder retries a query at a lower rung after
        a :class:`~repro.errors.ClauseBudgetExceeded`; the per-stage
        counter restarts so the retry gets the full budget while
        ``guard.clauses`` in the metrics keeps the cumulative total.
        """
        self._stage_clauses = 0

    def reset(self) -> None:
        """Start a fresh request on this guard.

        Guards were historically one-shot: the deadline is anchored at
        construction and every counter accumulates forever, so reusing a
        guard across requests would both shrink the second request's
        deadline and charge it for the first one's work.  ``reset()``
        makes sequential reuse sound — a server serving many requests
        per tenant (see :mod:`repro.serve`) calls it between requests:

        * the wall-clock deadline is re-anchored at *now*, so every
          request gets the full ``deadline_seconds``;
        * all accounting (iterations, decisions, clauses, states, rows
          high-water, checkpoints) restarts at zero, so one tenant's
          consumption never leaks into the next request's budget
          arithmetic or error snapshots.

        The budget itself (the limits) is immutable and survives.
        """
        self._checkpoints.set(0)
        self._iterations.set(0)
        self._decisions.set(0)
        self._clauses_total.set(0)
        self._states.set(0)
        self._peak_rows.set(0)
        self._stage_clauses = 0
        self._started = self._clock()
        self._deadline = (
            self._started + self.budget.deadline_seconds
            if self.budget.deadline_seconds is not None
            else None
        )

    def try_charge_state(self, amount: int = 1) -> bool:
        """Charge cycle-detection states; False when over budget.

        The non-raising variant exists for graceful degradation: PFP
        evaluation switches to its strict O(1)-memory counting mode when
        this returns False instead of failing the query.
        """
        self._states.value += amount
        limit = self.budget.max_states
        return limit is None or self._states.value <= limit

    def charge_state(self, amount: int = 1, **partial: object) -> None:
        """Raising variant of :meth:`try_charge_state`."""
        if not self.try_charge_state(amount):
            self._exhaust(
                StateBudgetExceeded,
                "states",
                self.budget.max_states,
                self._states.value,
                f"cycle-detection state budget of "
                f"{self.budget.max_states} exceeded",
                partial,
            )

    # -- internals -------------------------------------------------------

    def _exhaust(
        self,
        exc_type: type,
        kind: str,
        limit: object,
        used: object,
        message: str,
        partial: Dict[str, object],
    ) -> None:
        progress = dict(partial)
        progress.setdefault("checkpoints", self.checkpoints)
        progress.setdefault("elapsed_seconds", self.elapsed_seconds())
        raise exc_type(
            message,
            kind=kind,
            limit=limit,
            used=used,
            partial=progress,
            metrics=self.registry.snapshot(),
        )

    def __repr__(self) -> str:
        return (
            f"ResourceGuard(budget={self.budget!r}, "
            f"checkpoints={self.checkpoints})"
        )


GuardLike = Union[NullGuard, ResourceGuard]


def resolve_guard(
    budget: Optional[Budget],
    chaos: Optional[object] = None,
    registry: Optional[MetricsRegistry] = None,
    check_interval: int = 1,
) -> GuardLike:
    """The guard for an evaluation: NULL_GUARD when nothing is configured."""
    if (budget is None or budget.is_unlimited()) and chaos is None:
        return NULL_GUARD
    return ResourceGuard(
        budget, registry=registry, chaos=chaos, check_interval=check_interval
    )


__all__ = [
    "Budget",
    "GuardLike",
    "NULL_GUARD",
    "NullGuard",
    "ResourceExhausted",
    "ResourceGuard",
    "resolve_guard",
]
