"""Deterministic, seeded fault injection for unwind testing.

A :class:`ChaosPolicy` hooks into a
:class:`~repro.guard.budget.ResourceGuard` and fires at its cooperative
checkpoints.  Three failure modes, all deterministic:

* **raise-at-Nth-checkpoint** — ``fail_at=N`` raises
  :class:`InjectedFault` at exactly the Nth checkpoint; ``fail_within=M``
  picks N from ``random.Random(seed)`` in ``[1, M]`` so a seed sweep
  exercises many unwind points reproducibly.
* **inject-slow-step** — ``slow_step_seconds`` sleeps at every
  ``slow_every``-th checkpoint, forcing deadline paths without a slow
  query (pair with an injectable clock for instant tests).
* **inject-oversized-relation** — ``oversize_rows`` inflates every row
  charge, forcing :class:`~repro.errors.SpaceBudgetExceeded` on demand.

Tests use these to prove every engine unwinds cleanly: releases its
:class:`~repro.core.pfp_eval.SpaceMeter`, keeps its metrics registry
coherent, and reports a truthful partial result.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ReproError


class InjectedFault(ReproError):
    """A fault raised on purpose by a :class:`ChaosPolicy`.

    Deriving from :class:`~repro.errors.ReproError` (not
    :class:`~repro.errors.ResourceExhausted`) keeps injected failures
    distinguishable from genuine budget exhaustion in sweep outcomes.
    """

    def __init__(self, message: str, checkpoint: int = 0, where: str = ""):
        super().__init__(message)
        self.checkpoint = checkpoint
        self.where = where


@dataclass
class ChaosPolicy:
    """Deterministic fault-injection configuration.

    ``sleep`` is injectable so tests can pair the policy with a fake
    clock and never actually block.
    """

    seed: int = 0
    fail_at: Optional[int] = None
    fail_within: Optional[int] = None
    slow_step_seconds: float = 0.0
    slow_every: int = 1
    oversize_rows: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.fail_at is None and self.fail_within is not None:
            self.fail_at = random.Random(self.seed).randint(
                1, max(1, self.fail_within)
            )

    def on_checkpoint(self, count: int, where: str = "") -> None:
        """Guard hook: runs at every cooperative checkpoint."""
        if self.slow_step_seconds > 0.0 and count % max(1, self.slow_every) == 0:
            self.sleep(self.slow_step_seconds)
        if self.fail_at is not None and count == self.fail_at:
            raise InjectedFault(
                f"chaos: injected fault at checkpoint {count}"
                + (f" ({where})" if where else ""),
                checkpoint=count,
                where=where,
            )


__all__ = ["ChaosPolicy", "InjectedFault"]
