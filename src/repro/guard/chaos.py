"""Deterministic, seeded fault injection for unwind testing.

A :class:`ChaosPolicy` hooks into a
:class:`~repro.guard.budget.ResourceGuard` and fires at its cooperative
checkpoints.  All failure modes are deterministic:

* **raise-at-Nth-checkpoint** — ``fail_at=N`` fires at exactly the Nth
  checkpoint; ``fail_within=M`` picks N from ``random.Random(seed)`` in
  ``[1, M]`` so a seed sweep exercises many unwind points reproducibly.
* **fault kinds** — ``fault_kinds`` declares *which* failure fires at
  that checkpoint, so retry layers can be exercised against
  distinguishable modes.  The kind is chosen from the tuple with the
  same seeded RNG:

  - ``"fault"`` (default, the legacy mode) raises :class:`InjectedFault`;
  - ``"crash"`` raises an :class:`InjectedFault` tagged as a worker
    crash — the :mod:`repro.serve` pool worker escalates it to a real
    process death (``os._exit``) so ``BrokenProcessPool`` recovery is
    testable, while in-process evaluation unwinds it like any fault;
  - ``"flaky-io"`` raises an :class:`InjectedFault` tagged as a
    transient I/O error — always safe to retry;
  - ``"slow"`` sleeps ``slow_fault_seconds`` once instead of raising,
    forcing deadline/shedding paths without a slow query.

* **inject-slow-step** — ``slow_step_seconds`` sleeps at every
  ``slow_every``-th checkpoint, forcing deadline paths without a slow
  query (pair with an injectable clock for instant tests).
* **inject-oversized-relation** — ``oversize_rows`` inflates every row
  charge, forcing :class:`~repro.errors.SpaceBudgetExceeded` on demand.

Tests use these to prove every engine unwinds cleanly: releases its
:class:`~repro.core.pfp_eval.SpaceMeter`, keeps its metrics registry
coherent, and reports a truthful partial result.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import ReproError

#: The fault kinds a :class:`ChaosPolicy` may inject.
FAULT_KINDS: Tuple[str, ...] = ("fault", "crash", "flaky-io", "slow")


class InjectedFault(ReproError):
    """A fault raised on purpose by a :class:`ChaosPolicy`.

    Deriving from :class:`~repro.errors.ReproError` (not
    :class:`~repro.errors.ResourceExhausted`) keeps injected failures
    distinguishable from genuine budget exhaustion in sweep outcomes.
    ``kind`` names the injected failure mode (one of :data:`FAULT_KINDS`
    except ``"slow"``, which delays instead of raising).
    """

    def __init__(
        self,
        message: str,
        checkpoint: int = 0,
        where: str = "",
        kind: str = "fault",
    ):
        super().__init__(message)
        self.checkpoint = checkpoint
        self.where = where
        self.kind = kind


@dataclass
class ChaosPolicy:
    """Deterministic fault-injection configuration.

    ``sleep`` is injectable so tests can pair the policy with a fake
    clock and never actually block.
    """

    seed: int = 0
    fail_at: Optional[int] = None
    fail_within: Optional[int] = None
    fault_kinds: Tuple[str, ...] = ("fault",)
    slow_fault_seconds: float = 0.01
    slow_step_seconds: float = 0.0
    slow_every: int = 1
    oversize_rows: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        unknown = set(self.fault_kinds) - set(FAULT_KINDS)
        if unknown:
            raise ReproError(
                f"unknown chaos fault kind(s) {sorted(unknown)!r} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        rng = random.Random(self.seed)
        if self.fail_at is None and self.fail_within is not None:
            self.fail_at = rng.randint(1, max(1, self.fail_within))
        # the kind is fixed at construction from the same seed, so one
        # policy always injects the same distinguishable failure mode
        self._kind = rng.choice(list(self.fault_kinds)) if self.fault_kinds else "fault"
        self._slow_fired = False

    @property
    def kind(self) -> str:
        """The failure mode this policy will inject when it fires."""
        return self._kind

    def on_checkpoint(self, count: int, where: str = "") -> None:
        """Guard hook: runs at every cooperative checkpoint."""
        if self.slow_step_seconds > 0.0 and count % max(1, self.slow_every) == 0:
            self.sleep(self.slow_step_seconds)
        if self.fail_at is not None and count == self.fail_at:
            if self._kind == "slow":
                # delay once instead of raising; deadline checks at later
                # checkpoints turn this into DeadlineExceeded on demand
                if not self._slow_fired:
                    self._slow_fired = True
                    self.sleep(self.slow_fault_seconds)
                return
            raise InjectedFault(
                f"chaos: injected {self._kind} fault at checkpoint {count}"
                + (f" ({where})" if where else ""),
                checkpoint=count,
                where=where,
                kind=self._kind,
            )


__all__ = ["ChaosPolicy", "FAULT_KINDS", "InjectedFault"]
