"""Resource-guarded evaluation: budgets, deadlines, and fault injection.

The paper proves bounds; this package *enforces* them at runtime:

* :mod:`repro.guard.budget` — :class:`Budget` (declarative limits for
  rows/iterations/states/clauses/decisions/wall-clock, each mapping to a
  bound in the paper) and :class:`ResourceGuard` (cheap cooperative
  checkpoints threaded through every engine's hot loop, raising
  structured :class:`~repro.errors.ResourceExhausted` subclasses that
  carry partial progress plus a metrics snapshot).
* :mod:`repro.guard.chaos` — deterministic seeded fault injection
  (:class:`ChaosPolicy`), used by tests to prove every engine unwinds
  cleanly.

See ``docs/robustness.md`` for the failure taxonomy, the budget →
paper-bound mapping, and the graceful-degradation ladder.
"""

from repro.errors import (
    ClauseBudgetExceeded,
    DeadlineExceeded,
    DecisionBudgetExceeded,
    IterationBudgetExceeded,
    ResourceExhausted,
    SpaceBudgetExceeded,
    StateBudgetExceeded,
)
from repro.guard.budget import (
    Budget,
    GuardLike,
    NULL_GUARD,
    NullGuard,
    ResourceGuard,
    resolve_guard,
)
from repro.guard.chaos import ChaosPolicy, InjectedFault

__all__ = [
    "Budget",
    "ChaosPolicy",
    "ClauseBudgetExceeded",
    "DeadlineExceeded",
    "DecisionBudgetExceeded",
    "GuardLike",
    "InjectedFault",
    "IterationBudgetExceeded",
    "NULL_GUARD",
    "NullGuard",
    "ResourceExhausted",
    "ResourceGuard",
    "SpaceBudgetExceeded",
    "StateBudgetExceeded",
    "resolve_guard",
]
