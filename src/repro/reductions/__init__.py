"""Lower-bound reductions (Prop 3.2, Theorems 4.4, 4.5, 4.6).

Each module pairs a *reference solver* for the hard problem with the
paper's reduction into a bounded-variable query, so agreement is testable
end to end:

* :mod:`~repro.reductions.path_systems` — Cook's Path Systems problem,
  its Datalog-style closure solver, and the Prop 3.2 reduction to FO^3
  (PTIME-hardness of combined FO^k evaluation);
* :mod:`~repro.reductions.qbf` — quantified Boolean formulas and a
  brute-force solver;
* :mod:`~repro.reductions.qbf_to_pfp` — the Theorem 4.6 reduction of QBF
  to PFP^2 over the fixed two-element database ``B0`` (PSPACE-hardness of
  PFP^k expression complexity);
* :mod:`~repro.reductions.sat_to_eso` — the Theorem 4.5 reduction of
  propositional satisfiability to ESO^k over *any* fixed database
  (NP-hardness of ESO^k expression complexity);
* :mod:`~repro.reductions.boolean_value` — the Boolean formula value
  problem and its embedding into ``Answer_{FO^k}(B)`` (Theorem 4.4's
  ALOGTIME-hardness, observed as linear-time evaluation).
"""

from repro.reductions.path_systems import (
    PathSystem,
    path_system_database,
    path_system_query,
    random_path_system,
    solve_path_system,
)
from repro.reductions.qbf import QBF, random_qbf, solve_qbf
from repro.reductions.qbf_to_pfp import qbf_database, qbf_to_pfp_query
from repro.reductions.sat_to_eso import sat_to_eso_query
from repro.reductions.boolean_value import (
    bfvp_database,
    bfvp_to_fo_query,
    eval_boolean_formula,
    random_boolean_formula,
)

__all__ = [
    "PathSystem",
    "solve_path_system",
    "path_system_database",
    "path_system_query",
    "random_path_system",
    "QBF",
    "solve_qbf",
    "random_qbf",
    "qbf_database",
    "qbf_to_pfp_query",
    "sat_to_eso_query",
    "eval_boolean_formula",
    "random_boolean_formula",
    "bfvp_to_fo_query",
    "bfvp_database",
]
