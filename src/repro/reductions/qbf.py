"""Quantified Boolean formulas and a reference solver.

QBF is the canonical PSPACE-complete problem [GJ79]; Theorem 4.6 reduces
it to the expression complexity of PFP^k.  Instances here are a
quantifier prefix over named Boolean variables plus a propositional
matrix built from :mod:`repro.sat.cnf` formula nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReductionError
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    PropFormula,
)

FORALL = "forall"
EXISTS = "exists"


@dataclass(frozen=True)
class QBF:
    """``Q_1 Y_1 ... Q_l Y_l . matrix`` with ``Q_i ∈ {forall, exists}``."""

    prefix: Tuple[Tuple[str, str], ...]   # (quantifier, variable name)
    matrix: PropFormula

    def __post_init__(self) -> None:
        seen = set()
        for quantifier, name in self.prefix:
            if quantifier not in (FORALL, EXISTS):
                raise ReductionError(f"unknown quantifier {quantifier!r}")
            if name in seen:
                raise ReductionError(f"variable {name!r} quantified twice")
            seen.add(name)
        for var in _prop_vars(self.matrix):
            if var not in seen:
                raise ReductionError(
                    f"matrix variable {var!r} is not quantified (QBF "
                    f"instances here are closed)"
                )

    @property
    def num_variables(self) -> int:
        return len(self.prefix)


def _prop_vars(formula: PropFormula) -> set:
    if isinstance(formula, BoolVar):
        return {formula.name}
    if isinstance(formula, BoolConst):
        return set()
    if isinstance(formula, BoolNot):
        return _prop_vars(formula.sub)
    if isinstance(formula, (BoolAnd, BoolOr)):
        out = set()
        for sub in formula.subs:
            out |= _prop_vars(sub)
        return out
    raise ReductionError(f"unknown propositional node {formula!r}")


def eval_matrix(formula: PropFormula, assignment: Dict[str, bool]) -> bool:
    """Evaluate a propositional formula under a total assignment."""
    if isinstance(formula, BoolVar):
        try:
            return assignment[formula.name]
        except KeyError:
            raise ReductionError(f"unbound variable {formula.name!r}") from None
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, BoolNot):
        return not eval_matrix(formula.sub, assignment)
    if isinstance(formula, BoolAnd):
        return all(eval_matrix(s, assignment) for s in formula.subs)
    if isinstance(formula, BoolOr):
        return any(eval_matrix(s, assignment) for s in formula.subs)
    raise ReductionError(f"unknown propositional node {formula!r}")


def solve_qbf(instance: QBF) -> bool:
    """Reference solver: straightforward recursion over the prefix."""

    def recurse(index: int, assignment: Dict[str, bool]) -> bool:
        if index == len(instance.prefix):
            return eval_matrix(instance.matrix, assignment)
        quantifier, name = instance.prefix[index]
        outcomes = []
        for value in (False, True):
            assignment[name] = value
            outcomes.append(recurse(index + 1, assignment))
            del assignment[name]
        if quantifier == FORALL:
            return outcomes[0] and outcomes[1]
        return outcomes[0] or outcomes[1]

    return recurse(0, {})


def random_qbf(
    num_variables: int,
    matrix_depth: int = 4,
    seed: int = 0,
) -> QBF:
    """A seeded random closed QBF with alternating-ish prefix."""
    rng = random.Random(seed)
    names = [f"Y{i}" for i in range(1, num_variables + 1)]
    prefix = tuple(
        (FORALL if rng.random() < 0.5 else EXISTS, name) for name in names
    )

    def build(depth: int) -> PropFormula:
        if depth <= 0 or rng.random() < 0.3:
            return BoolVar(rng.choice(names))
        choice = rng.randrange(3)
        if choice == 0:
            return BoolNot(build(depth - 1))
        if choice == 1:
            return BoolAnd((build(depth - 1), build(depth - 1)))
        return BoolOr((build(depth - 1), build(depth - 1)))

    return QBF(prefix, build(matrix_depth))
