"""Path Systems and the Proposition 3.2 reduction to FO^3.

Cook's Path Systems problem [Coo74] is the canonical PTIME-complete
problem the paper reduces from.  An instance is a ternary relation ``Q``
and unary relations ``S`` (sources) and ``T`` (targets); the reachable
set is the least ``P`` with::

    P(x) ← S(x)
    P(x) ← Q(x, y, z), P(y), P(z)

and the question is whether ``T`` contains a reachable element.

Prop 3.2 unfolds the closure into FO^3: with

``φ(x) = S(x) ∨ ∃y∃z (Q(x,y,z) ∧ ∀x ((x=y ∨ x=z) → P(x)))``

define ``φ_1 = φ[P(x) := false]`` and ``φ_n = φ[P(x) := φ_{n-1}(x)]``;
then ``ψ_m = ∃x (T(x) ∧ φ_m(x))`` decides the instance for a database
with ``m`` elements, ``ψ_m`` has size ``O(m)`` and uses three variables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import ReductionError
from repro.core.engine import Query
from repro.logic.builders import and_, atom, eq, exists, false_, forall, or_
from repro.logic.substitution import substitute_relation
from repro.logic.syntax import Formula, Not, Var


@dataclass(frozen=True)
class PathSystem:
    """A Path Systems instance over elements ``0 .. size-1``."""

    size: int
    rules: FrozenSet[Tuple[int, int, int]]   # Q(x, y, z)
    sources: FrozenSet[int]                  # S
    targets: FrozenSet[int]                  # T

    def __post_init__(self) -> None:
        for triple in self.rules:
            if any(not 0 <= v < self.size for v in triple):
                raise ReductionError(f"rule {triple} out of range")
        for group in (self.sources, self.targets):
            if any(not 0 <= v < self.size for v in group):
                raise ReductionError("source/target out of range")


def solve_path_system(instance: PathSystem) -> bool:
    """Reference solver: the Datalog closure, then check the targets."""
    reachable: Set[int] = set(instance.sources)
    changed = True
    while changed:
        changed = False
        for x, y, z in instance.rules:
            if x not in reachable and y in reachable and z in reachable:
                reachable.add(x)
                changed = True
    return bool(reachable & instance.targets)


def reachable_set(instance: PathSystem) -> FrozenSet[int]:
    """The full closure (useful for per-element agreement tests)."""
    reachable: Set[int] = set(instance.sources)
    changed = True
    while changed:
        changed = False
        for x, y, z in instance.rules:
            if x not in reachable and y in reachable and z in reachable:
                reachable.add(x)
                changed = True
    return frozenset(reachable)


def path_system_database(instance: PathSystem) -> Database:
    """The instance as a relational database (Q/3, S/1, T/1)."""
    return Database(
        Domain.range(instance.size),
        {
            "Q": Relation(3, instance.rules),
            "S": Relation(1, [(s,) for s in instance.sources]),
            "T": Relation(1, [(t,) for t in instance.targets]),
        },
    )


def _phi_step() -> Tuple[Formula, Tuple[Var, ...]]:
    """The one-step formula ``φ(x)`` with its recursion atom ``P(x)``."""
    body = or_(
        atom("S", "x"),
        exists(
            ["y", "z"],
            and_(
                atom("Q", "x", "y", "z"),
                forall(
                    "x",
                    or_(
                        Not(or_(eq("x", "y"), eq("x", "z"))),
                        atom("P", "x"),
                    ),
                ),
            ),
        ),
    )
    return body, (Var("x"),)


def unfolded_reachability(iterations: int) -> Formula:
    """``φ_m(x)``: the closure unfolded ``iterations`` times (size O(m))."""
    if iterations < 1:
        raise ReductionError(f"need at least one unfolding, got {iterations}")
    step, params = _phi_step()
    current = substitute_relation(step, "P", params, false_())
    for _ in range(iterations - 1):
        current = substitute_relation(step, "P", params, current)
    return current


def path_system_query(instance: PathSystem) -> Query:
    """The Prop 3.2 query ``ψ_m = ∃x (T(x) ∧ φ_m(x))`` for this instance.

    ``m`` is the number of elements: the closure converges within ``m``
    rounds, so ``ψ_m`` holds on the instance's database exactly when the
    Path Systems question answers yes.
    """
    m = max(instance.size, 1)
    phi_m = unfolded_reachability(m)
    sentence = exists("x", and_(atom("T", "x"), phi_m))
    return Query(sentence, output_vars=(), name=f"path-system-{m}")


def random_path_system(
    size: int,
    num_rules: int,
    num_sources: int = 1,
    num_targets: int = 1,
    seed: int = 0,
) -> PathSystem:
    """A seeded random instance (rules sampled uniformly)."""
    rng = random.Random(seed)
    rules = set()
    while len(rules) < num_rules:
        rules.add(
            (
                rng.randrange(size),
                rng.randrange(size),
                rng.randrange(size),
            )
        )
    sources = frozenset(rng.sample(range(size), min(num_sources, size)))
    targets = frozenset(rng.sample(range(size), min(num_targets, size)))
    return PathSystem(size, frozenset(rules), sources, targets)
