"""Theorem 4.6: QBF reduces to PFP^2 over a fixed two-element database.

The fixed database is ``B0 = ({0, 1}, P = {0})``.  Each Boolean variable
``Y_i`` is simulated by a unary relation variable ``X_i`` — "``X_i``
nonempty" means "``Y_i`` is true" — and iterating a partial fixpoint
walks ``X_i`` through the values needed to try both truth assignments:

``∀Y_i ψ`` becomes ``∃x [pfp X_i(x). ρ_i](x)`` where::

    ρ_i(x) =   (X_i = ∅   ∧  P(x) ∧ ψ)     -- try Y_i = false; advance to {0}
             ∨ (X_i = {0} ∧ ¬P(x) ∧ ψ)     -- try Y_i = true;  advance to {1}
             ∨ (X_i = {1} ∧ ¬P(x))          -- accept: {1} is a fixpoint

The iteration from ``∅`` converges to ``{1}`` (a nonempty relation —
"true") exactly when ``ψ`` holds under both values of ``Y_i``; otherwise
it converges to ``∅`` or cycles, and the partial fixpoint is empty by
convention.  ``∃Y_i ψ`` is ``¬∀Y_i ¬ψ``.  The whole sentence uses two
individual variables and has size linear in the QBF, witnessing the
PSPACE-hardness of PFP^2 *expression* complexity (the database is fixed).
"""

from __future__ import annotations


from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import ReductionError
from repro.core.engine import Query
from repro.logic.builders import and_, atom, exists, forall, not_, or_, pfp
from repro.logic.syntax import Formula, Not
from repro.reductions.qbf import EXISTS, FORALL, QBF
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    PropFormula,
)


def qbf_database() -> Database:
    """The fixed database ``B0 = ({0,1}, P = {0})`` of Theorem 4.6."""
    return Database(Domain.range(2), {"P": Relation(1, [(0,)])})


def _rel_for(name: str) -> str:
    return f"X_{name}"


def _is_empty(rel: str) -> Formula:
    return not_(exists("y", atom(rel, "y")))


def _is_zero(rel: str) -> Formula:
    """``X = {0}`` — nonempty and every member satisfies P."""
    return and_(
        exists("y", atom(rel, "y")),
        forall("y", or_(not_(atom(rel, "y")), atom("P", "y"))),
    )


def _is_one(rel: str) -> Formula:
    """``X = {1}`` — nonempty and no member satisfies P."""
    return and_(
        exists("y", atom(rel, "y")),
        forall("y", or_(not_(atom(rel, "y")), not_(atom("P", "y")))),
    )


def _embed_matrix(formula: PropFormula) -> Formula:
    """Propositional matrix → FO over the ``X_i``: ``Y_i ↦ ∃y X_i(y)``."""
    if isinstance(formula, BoolVar):
        return exists("y", atom(_rel_for(str(formula.name)), "y"))
    if isinstance(formula, BoolConst):
        from repro.logic.builders import false_, true_

        return true_() if formula.value else false_()
    if isinstance(formula, BoolNot):
        return Not(_embed_matrix(formula.sub))
    if isinstance(formula, BoolAnd):
        return and_(*(_embed_matrix(s) for s in formula.subs)) if formula.subs else (
            _embed_matrix(BoolConst(True))
        )
    if isinstance(formula, BoolOr):
        return or_(*(_embed_matrix(s) for s in formula.subs)) if formula.subs else (
            _embed_matrix(BoolConst(False))
        )
    raise ReductionError(f"unknown propositional node {formula!r}")


def _forall_gadget(rel: str, psi: Formula) -> Formula:
    """``∀Y`` as the three-phase partial fixpoint described above.

    ``ψ`` is shared by the two advancing phases (it must hold both when
    ``Y`` reads false and when it reads true), so it appears *once* —
    duplicating it per phase would make the whole reduction exponential
    in the prefix length instead of linear.
    """
    advance = or_(
        and_(_is_empty(rel), atom("P", "x")),
        and_(_is_zero(rel), not_(atom("P", "x"))),
    )
    rho = or_(
        and_(psi, advance),
        and_(_is_one(rel), not_(atom("P", "x"))),
    )
    return exists("x", pfp(rel, ["x"], rho, ["x"]))


def qbf_to_pfp_query(instance: QBF) -> Query:
    """The Theorem 4.6 sentence for ``instance`` (evaluate on B0).

    Linear size, two individual variables, one pfp operator per Boolean
    variable.
    """
    body = _embed_matrix(instance.matrix)
    for quantifier, name in reversed(instance.prefix):
        rel = _rel_for(name)
        if quantifier == FORALL:
            body = _forall_gadget(rel, body)
        elif quantifier == EXISTS:
            body = not_(_forall_gadget(rel, not_(body)))
        else:  # pragma: no cover - QBF validates quantifiers
            raise ReductionError(f"unknown quantifier {quantifier!r}")
    return Query(body, output_vars=(), name="qbf-to-pfp2")
