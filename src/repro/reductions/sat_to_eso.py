"""Theorem 4.5: SAT reduces to ESO^k over *any* fixed database.

A propositional formula ``φ`` over ``P_1 .. P_l`` is satisfiable iff
``∃P_1 ... ∃P_l φ`` holds — where each ``P_i`` is quantified as a 0-ary
(propositional) relation — in *any* database whatsoever.  No individual
variables are needed at all, so the reduction lands in ESO^k for every
``k ≥ 0`` and shows the NP-hardness of ESO^k *expression* complexity
(the database is fixed and irrelevant).
"""

from __future__ import annotations

from repro.errors import ReductionError
from repro.core.engine import Query
from repro.logic.builders import false_, true_
from repro.logic.syntax import And, Formula, Not, Or, RelAtom, SOExists
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    PropFormula,
)


def _embed(formula: PropFormula) -> Formula:
    """Propositional formula → FO with 0-ary atoms for the propositions."""
    if isinstance(formula, BoolVar):
        return RelAtom(f"P_{formula.name}", ())
    if isinstance(formula, BoolConst):
        return true_() if formula.value else false_()
    if isinstance(formula, BoolNot):
        return Not(_embed(formula.sub))
    if isinstance(formula, BoolAnd):
        return And(tuple(_embed(s) for s in formula.subs))
    if isinstance(formula, BoolOr):
        return Or(tuple(_embed(s) for s in formula.subs))
    raise ReductionError(f"unknown propositional node {formula!r}")


def sat_to_eso_query(formula: PropFormula) -> Query:
    """``∃P_1 ... ∃P_l φ`` — satisfiable iff true on any database.

    The sentence's size is linear in ``|φ|`` and it uses zero individual
    variables.
    """
    from repro.reductions.qbf import _prop_vars

    body = _embed(formula)
    for name in sorted(str(v) for v in _prop_vars(formula)):
        body = SOExists(f"P_{name}", 0, body)
    return Query(body, output_vars=(), name="sat-to-eso")
