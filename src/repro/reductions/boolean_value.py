"""The Boolean formula value problem and Theorem 4.4.

The Boolean formula value problem (BFVP) — evaluate a propositional
formula built from constants — is ALOGTIME-complete [Bus87], and
Theorem 4.4 exhibits a fixed database ``B`` such that BFVP reduces to
``Answer_{FO^k}(B)``: hardness of FO^k expression complexity.

The reduction: over ``B1 = ({0,1}, P = {1})`` map ``true ↦ ∃x P(x)``,
``false ↦ ∀x P(x)`` (false on B1 since 0 ∉ P), and connectives to
themselves.  The resulting sentence has size linear in the formula, uses
one individual variable, and holds on ``B1`` iff the formula evaluates to
true.  On a sequential machine the observable consequence is that
evaluation over the *fixed* B1 is a single linear pass (the
expression-complexity benchmark measures exactly that).
"""

from __future__ import annotations

import random

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import ReductionError
from repro.core.engine import Query
from repro.logic.builders import atom, exists, forall
from repro.logic.syntax import And, Formula, Not, Or
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    PropFormula,
)


def eval_boolean_formula(formula: PropFormula) -> bool:
    """Reference BFVP evaluator (constants only; variables are an error)."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, BoolVar):
        raise ReductionError(
            f"BFVP formulas are variable-free, found {formula.name!r}"
        )
    if isinstance(formula, BoolNot):
        return not eval_boolean_formula(formula.sub)
    if isinstance(formula, BoolAnd):
        return all(eval_boolean_formula(s) for s in formula.subs)
    if isinstance(formula, BoolOr):
        return any(eval_boolean_formula(s) for s in formula.subs)
    raise ReductionError(f"unknown propositional node {formula!r}")


def bfvp_database() -> Database:
    """The fixed database ``B1 = ({0,1}, P = {1})`` of the reduction."""
    return Database(Domain.range(2), {"P": Relation(1, [(1,)])})


def _embed(formula: PropFormula) -> Formula:
    if isinstance(formula, BoolConst):
        if formula.value:
            return exists("x", atom("P", "x"))      # true on B1
        return forall("x", atom("P", "x"))          # false on B1
    if isinstance(formula, BoolVar):
        raise ReductionError(
            f"BFVP formulas are variable-free, found {formula.name!r}"
        )
    if isinstance(formula, BoolNot):
        return Not(_embed(formula.sub))
    if isinstance(formula, BoolAnd):
        return And(tuple(_embed(s) for s in formula.subs))
    if isinstance(formula, BoolOr):
        return Or(tuple(_embed(s) for s in formula.subs))
    raise ReductionError(f"unknown propositional node {formula!r}")


def bfvp_to_fo_query(formula: PropFormula) -> Query:
    """The FO^1 sentence over ``B1`` whose truth is the formula's value."""
    return Query(_embed(formula), output_vars=(), name="bfvp-to-fo1")


def random_boolean_formula(
    depth: int, seed: int = 0, fanout: int = 2
) -> PropFormula:
    """A seeded random constant-only formula of the given depth."""
    rng = random.Random(seed)

    def build(remaining: int) -> PropFormula:
        if remaining <= 0:
            return BoolConst(rng.random() < 0.5)
        choice = rng.randrange(3)
        if choice == 0:
            return BoolNot(build(remaining - 1))
        parts = tuple(build(remaining - 1) for _ in range(fanout))
        return BoolAnd(parts) if choice == 1 else BoolOr(parts)

    return build(depth)
