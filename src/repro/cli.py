"""Command-line interface: evaluate queries against encoded databases.

Usage (also via ``python -m repro``)::

    # evaluate a query against a database file (standard §2.1 encoding)
    python -m repro eval --db company.db --query "exists y. E(x, y)" --out x

    # inspect a query: language, width, size
    python -m repro info --query "[lfp S(x). P(x) | S(x)](u)"

    # minimize a query's variables
    python -m repro minimize --query "exists z1. exists z2. (E(x,z1) & E(z1,z2) & E(z2,y))"

    # run a Datalog program
    python -m repro datalog --db graph.db --program rules.dl --pred reach

    # serve prepared queries over HTTP with admission control and
    # retries; --smoke N runs the CI resilience drill instead
    python -m repro serve --db g=graph.db \
        --prepare "tc=u,v=[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)" \
        --port 8080 --workers 2
    python -m repro serve --smoke 50 --workers 2 --telemetry serve.jsonl

    # trace an evaluation: span tree, hot spans, optional JSONL export
    python -m repro trace "[lfp S(x). P(x) | exists y. (E(y,x) & S(y))](u)" graph.db

    # annotated evaluation tree + answer provenance + live progress
    python -m repro explain --db graph.db \
        --query "[lfp S(x,y). E(x,y) | exists z. (E(x,z) & S(z,y))](u,v)" \
        --why 0 3 --progress

    # align two exported traces by subformula path (sparse vs packed, ...)
    python -m repro trace diff sparse.jsonl packed.jsonl

    # scaling sweep over seeded random databases, 2 worker processes
    python -m repro sweep --query "[lfp S(x,y). E(x,y) | exists z. (E(x,z) & S(z,y))](u,v)" \
        --sizes 4 8 12 --jobs 2 --strategy seminaive --cache

    # perf observatory: record a run, gate it against its baseline,
    # inspect the trajectory, profile where the time goes as n grows
    python -m repro perf record bench_table2_fp
    python -m repro perf compare T2-FP --counters-only
    python -m repro perf report T2-FP
    python -m repro perf profile T2-FP --top 8

Database files contain the standard encoding produced by
:func:`repro.database.encoding.encode_database`.

Resource budgets: ``eval``, ``trace``, and ``datalog`` accept
``--timeout SECONDS``, ``--max-iterations N``, and ``--max-rows N``;
exceeding any of them aborts the evaluation cleanly (see
``docs/robustness.md``).

Exit codes:

====  =============================================================
0     success
1     a :class:`~repro.errors.ReproError` (bad query, missing
      relation, …), a missing file, or a ``perf compare`` regression
2     usage error (argparse)
124   a resource budget or deadline was exhausted
      (:class:`~repro.errors.ResourceExhausted` — same convention as
      ``timeout(1)``)
====  =============================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.encoding import decode_database, encode_database
from repro.errors import ReproError, ResourceExhausted
from repro.guard.budget import Budget

#: Exit code for exhausted budgets/deadlines, matching ``timeout(1)``.
EXIT_RESOURCE_EXHAUSTED = 124
from repro.logic.analysis import alternation_depth, classify_language
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula, formula_length
from repro.logic.variables import free_variables, variable_width


def _load_db(path: str):
    with open(path) as handle:
        return decode_database(handle.read().strip())


def _budget_from_args(args: argparse.Namespace) -> Optional[Budget]:
    budget = Budget(
        deadline_seconds=getattr(args, "timeout", None),
        max_iterations=getattr(args, "max_iterations", None),
        max_rows=getattr(args, "max_rows", None),
    )
    return None if budget.is_unlimited() else budget


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["sparse", "packed"],
        default=None,
        help="table representation for the FO/FP/PFP engines (default: "
        "the REPRO_BENCH_BACKEND environment variable, else 'sparse')",
    )


def _add_compile_argument(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--compile",
        dest="compile",
        action="store_true",
        default=None,
        help="compile pure-FO subtrees (and fixpoint bodies) into "
        "straight-line plans (default: the REPRO_COMPILE environment "
        "variable)",
    )
    group.add_argument(
        "--no-compile",
        dest="compile",
        action="store_false",
        help="force interpreted evaluation even when REPRO_COMPILE is set",
    )


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; exceeding it exits with code 124",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="bound on fixpoint/round iterations",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="bound on any single intermediate relation (the n^k invariant)",
    )


#: Version of the ``eval --json`` document layout; bump on key changes.
EVAL_JSON_SCHEMA_VERSION = 1


def _explain_plan(formula, db, backend_name) -> int:
    from repro.kernel.backend import resolve_backend
    from repro.perf.compile import describe_plans

    backend = resolve_backend(backend_name, db.domain)
    print(describe_plans(formula, db, backend))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    db = _load_db(args.db)
    formula = parse_formula(args.query)
    if args.explain_plan:
        return _explain_plan(formula, db, args.backend)
    out = tuple(args.out or sorted(free_variables(formula)))
    options = EvalOptions(
        strategy=FixpointStrategy(args.strategy),
        k_limit=args.k_limit,
        budget=_budget_from_args(args),
        backend=args.backend,
        compile=args.compile,
    )
    result = evaluate(formula, db, out, options)
    if args.json:
        import json as _json

        document = {
            "schema_version": EVAL_JSON_SCHEMA_VERSION,
            "language": result.language.value,
            "output_vars": list(out),
            "answer_rows": len(result.relation),
            "boolean": result.as_bool() if not out else None,
            "rows": sorted(
                [list(row) for row in result.relation.tuples], key=repr
            ),
            "stats": result.stats.as_dict(),
            "metrics": result.stats.registry.snapshot(),
        }
        print(_json.dumps(document, indent=2, sort_keys=True, default=str))
        return 0
    if not out:
        print("true" if result.as_bool() else "false")
    else:
        print("\t".join(out))
        for row in sorted(result.relation.tuples, key=repr):
            print("\t".join(str(v) for v in row))
    if args.stats:
        stats = result.stats
        print(
            f"# language={result.language.value} "
            f"table_ops={stats.table_ops} "
            f"max_rows={stats.max_intermediate_rows} "
            f"max_arity={stats.max_intermediate_arity} "
            f"fixpoint_iterations={stats.fixpoint_iterations} "
            f"sat_variables={stats.sat_variables} "
            f"sat_clauses={stats.sat_clauses}",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, render_report

    db = _load_db(args.db)
    formula = parse_formula(args.query)
    out = tuple(args.out or sorted(free_variables(formula)))
    tracer = Tracer()
    options = EvalOptions(
        strategy=FixpointStrategy(args.strategy),
        k_limit=args.k_limit,
        trace=tracer,
        budget=_budget_from_args(args),
        backend=args.backend,
        compile=args.compile,
    )
    result = evaluate(formula, db, out, options)
    answer = (
        ("true" if result.as_bool() else "false")
        if not out
        else f"{len(result.relation)} row(s)"
    )
    print(f"answer: {answer}  (language={result.language.value})")
    print()
    print(
        render_report(
            tracer,
            registry=result.stats.registry,
            top_k=args.top,
            max_depth=args.max_depth,
        )
    )
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(tracer.export_jsonl() + "\n")
        print(f"\n# wrote {len(tracer.spans)} span(s) to {args.jsonl}")
    return 0


def _domain_value(db, text: str):
    """Resolve a ``--why`` token to a domain value (verbatim, then int)."""
    if text in db.domain:
        return text
    try:
        as_int = int(text)
    except ValueError:
        as_int = None
    if as_int is not None and as_int in db.domain:
        return as_int
    raise ReproError(f"value {text!r} is not in the database domain")


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.logic.variables import variable_width
    from repro.obs.explain import ProgressReporter, annotate_evaluation
    from repro.obs.tracer import Tracer

    if args.trace_file:
        return _explain_trace_file(args.trace_file)
    if args.experiment:
        from repro.perf.experiments import explain_target

        formula, db, out, opts = explain_target(args.experiment, args.size)
        strategy = str(opts.get("strategy", args.strategy))
        backend = opts.get("backend", args.backend)
        k_limit = opts.get("k_limit", args.k_limit)
    else:
        if not (args.db and args.query):
            raise ReproError(
                "explain needs --experiment NAME or --db PATH --query TEXT"
            )
        db = _load_db(args.db)
        formula = parse_formula(args.query)
        out = tuple(args.out or sorted(free_variables(formula)))
        strategy, backend, k_limit = args.strategy, args.backend, args.k_limit
    budget = _budget_from_args(args)
    n = db.size()
    if args.progress:
        from repro.guard.budget import resolve_guard

        # a display guard on the same budget: anchored milliseconds
        # before the engine's own, close enough for heartbeat deadlines
        guard = resolve_guard(budget) if budget is not None else None
        tracer = ProgressReporter(
            interval=args.progress_interval,
            guard=guard,
            rows_bound=n ** max(1, variable_width(formula)),
            domain_size=n,
        )
    else:
        tracer = Tracer()
    options = EvalOptions(
        strategy=FixpointStrategy(strategy),
        k_limit=k_limit,
        trace=tracer,
        budget=budget,
        backend=backend,
        compile=args.compile,
    )
    result = evaluate(formula, db, out, options)
    extras = {
        "query": format_formula(formula),
        "language": result.language.value,
        "backend": backend or "sparse",
        "answer": (
            ("true" if result.as_bool() else "false")
            if not out
            else f"{len(result.relation)} row(s)"
        ),
    }
    for name, value in result.stats.registry.snapshot().items():
        if name.startswith("cache."):
            extras[name] = value
    for name, value in result.stats.registry.snapshot().items():
        if name.startswith("compile."):
            extras[name] = value
    report = annotate_evaluation(
        formula,
        tracer,
        domain_size=n,
        deviation_factor=args.deviation,
        extras=extras,
    )
    text = report.render()
    print(text)
    if args.plan:
        from repro.kernel.backend import resolve_backend
        from repro.perf.compile import describe_plans

        print()
        print("== compiled plan ==")
        print(describe_plans(formula, db, resolve_backend(backend, db.domain)))
    if args.report_file:
        with open(args.report_file, "w") as handle:
            handle.write(text + "\n")
        print(f"\n# wrote report to {args.report_file}")
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(tracer.export_jsonl() + "\n")
        print(f"# wrote {len(tracer.spans)} span(s) to {args.jsonl}")
    if args.why is not None:
        from repro.obs.provenance import check_witness, explain_answer

        values = tuple(_domain_value(db, v) for v in args.why)
        witness = explain_answer(formula, db, out, values)
        print()
        print(f"== why {values!r} ==")
        print(witness.format())
        problems = check_witness(witness, db)
        if problems:
            for problem in problems:
                print(f"# witness problem: {problem}", file=sys.stderr)
            return 1
        print("# witness replayed against the database: ok")
    return 0


def _explain_trace_file(path: str) -> int:
    """Render a recorded trace (e.g. a served request's reassembled
    cross-process trace) without re-running any evaluation."""
    from repro.obs.explain import spans_from_dicts
    from repro.obs.profile import parse_trace_jsonl
    from repro.obs.report import render_span_tree

    with open(path, encoding="utf-8") as handle:
        roots = spans_from_dicts(parse_trace_jsonl(handle.read()))
    if not roots:
        raise ReproError(f"no spans in trace file {path!r}")

    class _Recorded:
        # the minimal tracer surface render_span_tree walks
        def roots(self):
            return roots

    request_ids = sorted(
        {
            str(span.attrs["request_id"])
            for span in roots
            if "request_id" in span.attrs
        }
    )
    span_count = sum(1 for root in roots for _ in _walk_spans(root))
    print(f"== recorded trace {path} ==")
    if request_ids:
        print(f"request(s): {', '.join(request_ids)}")
    print(f"{span_count} span(s), {len(roots)} root(s)")
    print()
    print(render_span_tree(_Recorded()))
    return 0


def _walk_spans(span):
    yield span
    for child in span.children:
        for descendant in _walk_spans(child):
            yield descendant


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    import os

    from repro.obs.explain import (
        diff_traces,
        render_trace_diff,
        spans_from_dicts,
    )
    from repro.obs.profile import parse_trace_jsonl

    with open(args.trace_a) as handle:
        roots_a = spans_from_dicts(parse_trace_jsonl(handle.read()))
    with open(args.trace_b) as handle:
        roots_b = spans_from_dicts(parse_trace_jsonl(handle.read()))
    label_a = args.label_a or os.path.basename(args.trace_a)
    label_b = args.label_b or os.path.basename(args.trace_b)
    print(
        render_trace_diff(
            diff_traces(roots_a, roots_b),
            label_a=label_a,
            label_b=label_b,
            top=args.top,
        )
    )
    return 0


def _sweep_database(n: int, seed: int, edge_prob: float):
    """A seeded random labeled digraph over ``{0, …, n-1}``.

    ``E`` holds each ordered pair independently with ``edge_prob``;
    ``P`` marks the even elements and ``Q`` the multiples of three, so
    FO^k corpus queries over the standard test schema run unchanged.
    """
    import random

    from repro.database.database import Database

    rng = random.Random(seed * 1_000_003 + n)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < edge_prob
    ]
    return Database.from_tuples(
        range(n),
        {
            "E": (2, edges),
            "P": (1, [(i,) for i in range(0, n, 2)]),
            "Q": (1, [(i,) for i in range(0, n, 3)]),
        },
    )


def _sweep_workload(
    parameter: float,
    query: str = "",
    out: tuple = (),
    strategy: str = FixpointStrategy.MONOTONE.value,
    cache: bool = False,
    budget: Optional[Budget] = None,
    k_limit: Optional[int] = None,
    seed: int = 0,
    edge_prob: float = 0.3,
    backend: Optional[str] = None,
    compile: Optional[bool] = None,
) -> dict:
    """One sweep point: evaluate the query at database size ``parameter``.

    Module-level so ``functools.partial`` over it stays picklable —
    ``--jobs N`` ships it to worker processes.  The budget's deadline is
    anchored when the evaluation starts, i.e. per point and per worker.
    """
    db = _sweep_database(int(parameter), seed, edge_prob)
    formula = parse_formula(query)
    options = EvalOptions(
        strategy=FixpointStrategy(strategy),
        k_limit=k_limit,
        budget=budget,
        subquery_cache=cache,
        backend=backend,
        compile=compile,
    )
    result = evaluate(formula, db, out, options)
    counters = {"answer_rows": float(len(result.relation))}
    for key, value in result.stats.as_dict().items():
        counters[key] = float(value)
    # rows high-water: the guard sees every charged relation when a
    # budget is armed; otherwise the audited per-table maximum stands in
    if result.guard is not None and hasattr(result.guard, "peak_rows"):
        counters["peak_rows"] = float(result.guard.peak_rows)
    else:
        counters["peak_rows"] = float(result.stats.max_intermediate_rows)
    return counters


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools

    from repro.complexity.measure import run_sweep

    formula = parse_formula(args.query)
    out = tuple(args.out or sorted(free_variables(formula)))
    workload = functools.partial(
        _sweep_workload,
        query=args.query,
        out=out,
        strategy=args.strategy,
        cache=args.cache,
        budget=_budget_from_args(args),
        k_limit=args.k_limit,
        seed=args.seed,
        edge_prob=args.edge_prob,
        backend=args.backend,
        compile=args.compile,
    )
    result = run_sweep(
        "cli-sweep",
        args.sizes,
        workload,
        repetitions=args.repetitions,
        warmup=args.repetitions > 1,
        parallel=args.jobs,
    )
    print(
        result.format_rows(
            [
                "answer_rows",
                "fixpoint_iterations",
                "max_intermediate_rows",
                "peak_rows",
            ]
        )
    )
    failures = result.failures()
    for point in failures:
        print(
            f"# n={point.parameter:g}: {point.outcome}: {point.error}",
            file=sys.stderr,
        )
    if any(p.outcome == "timeout" for p in failures):
        return EXIT_RESOURCE_EXHAUSTED
    return 1 if failures else 0


def _cmd_info(args: argparse.Namespace) -> int:
    formula = parse_formula(args.query)
    print(f"formula   : {format_formula(formula)}")
    print(f"language  : {classify_language(formula).value}")
    print(f"width (k) : {variable_width(formula)}")
    print(f"free vars : {', '.join(sorted(free_variables(formula))) or '-'}")
    print(f"|e|       : {formula_length(formula)}")
    print(f"alt depth : {alternation_depth(formula)}")
    return 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.optimize import minimize_variables

    formula = parse_formula(args.query)
    minimized = minimize_variables(formula)
    print(format_formula(minimized))
    print(
        f"# width {variable_width(formula)} -> {variable_width(minimized)}",
        file=sys.stderr,
    )
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    # round-trip/canonicalize a database file
    db = _load_db(args.db)
    print(encode_database(db))
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    from repro.datalog import parse_program, semi_naive
    from repro.guard.budget import resolve_guard

    db = _load_db(args.db)
    with open(args.program) as handle:
        program = parse_program(handle.read())
    guard = resolve_guard(_budget_from_args(args))
    results = semi_naive(program, db, guard=guard)
    predicates = [args.pred] if args.pred else sorted(results)
    for predicate in predicates:
        if predicate not in results:
            raise ReproError(f"program does not define {predicate!r}")
        for row in sorted(results[predicate].tuples, key=repr):
            print(f"{predicate}(" + ", ".join(str(v) for v in row) + ")")
    return 0


#: Default run-store root, relative to the invocation directory — the
#: same place the benchmarks write to (``benchmarks/out/records``).
DEFAULT_STORE = "benchmarks/out/records"


def _parse_overrides(pairs) -> dict:
    overrides = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ReproError(
                f"--set expects KEY=VALUE, got {pair!r}"
            )
        key, _, value = pair.partition("=")
        overrides[key.strip()] = value.strip()
    return overrides


def _perf_fresh_record(args: argparse.Namespace, trace: bool = False):
    """Run the named experiment and build its run record."""
    from repro.obs.runstore import record_from_sweep
    from repro.perf.experiments import get_experiment, run_experiment

    experiment = get_experiment(args.experiment)
    overrides = _parse_overrides(getattr(args, "set", None))
    sweep = run_experiment(
        experiment,
        overrides=overrides,
        sizes=getattr(args, "sizes", None),
        deadline=getattr(args, "deadline", None),
        repetitions=getattr(args, "repetitions", None),
        trace=trace or getattr(args, "spans", False),
        jobs=getattr(args, "jobs", 1),
    )
    meta = {"options": dict(experiment.options, **overrides)}
    record = record_from_sweep(
        experiment.experiment_id,
        experiment.title,
        sweep,
        fit_counters=experiment.fit_counters,
        deadline=getattr(args, "deadline", None),
        meta=meta,
        include_spans=getattr(args, "spans", False),
    )
    return experiment, sweep, record


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.obs.runstore import RunStore, format_fingerprint

    experiment, sweep, record = _perf_fresh_record(args)
    store = RunStore(args.store)
    digest, path = store.save(record)
    print(f"[{record.experiment_id}] {record.title}")
    print(f"# env: {format_fingerprint(record.env)}")
    print(sweep.format_rows(experiment.fit_counters))
    for series, fit in sorted(record.fits.items()):
        if fit.get("model") == "polynomial":
            print(f"# fit {series}: degree {fit['coefficient']:.2f}")
        elif fit.get("model") == "exponential":
            print(f"# fit {series}: base {fit['base']:.2f}")
    print(f"# record {digest} -> {path}")
    baseline_path = store.baseline_path(record.experiment_id)
    if args.baseline or store.load_baseline(record.experiment_id) is None:
        store.save_baseline(record)
        print(f"# baseline -> {baseline_path}")
    failures = sweep.failures()
    if any(p.outcome == "timeout" for p in failures):
        return EXIT_RESOURCE_EXHAUSTED
    return 1 if failures else 0


def _perf_policy(args: argparse.Namespace):
    from repro.obs.regress import RegressionPolicy

    if args.counters_only:
        return RegressionPolicy.counters_only()
    return RegressionPolicy(
        seconds_ratio=args.seconds_ratio,
        degree_band=args.degree_band,
    )


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.regress import compare_records
    from repro.obs.runstore import RunStore
    from repro.perf.experiments import get_experiment

    store = RunStore(args.store)
    experiment_id = get_experiment(args.experiment).experiment_id
    baseline = store.load_baseline(experiment_id)
    if baseline is None:
        raise ReproError(
            f"no baseline {store.baseline_path(experiment_id)!r} — run "
            f"`repro perf record {args.experiment} --baseline` first"
        )
    if args.use_latest:
        fresh = store.latest(experiment_id)
        if fresh is None:
            raise ReproError(
                f"--use-latest: no archived records for {experiment_id!r} "
                f"under {args.store}"
            )
    else:
        _, _, fresh = _perf_fresh_record(args)
        if args.save:
            digest, path = store.save(fresh)
            print(f"# record {digest} -> {path}", file=sys.stderr)
    report = compare_records(baseline, fresh, _perf_policy(args))
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.obs.runstore import RunStore
    from repro.perf.experiments import get_experiment

    store = RunStore(args.store)
    if args.experiment is None:
        ids = store.experiments()
        if not ids:
            print(f"(no records under {args.store})")
            return 0
        for experiment_id in ids:
            entries = store.index(experiment_id)
            print(f"{experiment_id}: {len(entries)} record(s)")
        return 0
    experiment_id = get_experiment(args.experiment).experiment_id
    entries = store.index(experiment_id)
    if not entries:
        print(f"(no records for {experiment_id} under {args.store})")
        return 0
    shown = entries[-args.limit :] if args.limit else entries
    print(f"[{experiment_id}] {len(entries)} record(s), newest last:")
    for entry in shown:
        failures = entry.get("failures", 0)
        print(
            f"  {entry.get('created', '?'):20}  "
            f"git={entry.get('git_sha') or '-':10}  "
            f"{entry.get('digest')}  points={entry.get('points')}"
            + (f"  failures={failures}" if failures else "")
        )
    latest = store.latest(experiment_id)
    baseline = store.load_baseline(experiment_id)
    for label, record in (("latest", latest), ("baseline", baseline)):
        if record is None:
            continue
        fits = ", ".join(
            f"{series}: {fit.get('model')} "
            f"{float(fit.get('coefficient', 0.0)):.2f}"
            for series, fit in sorted(record.fits.items())
            if fit.get("model") != "none"
        )
        print(f"  {label}: {fits or '(no fits)'}")
    return 0


def _cmd_perf_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import (
        SpanProfile,
        parse_trace_jsonl,
        profile_sweep,
        render_profile,
    )

    if args.jsonl:
        with open(args.jsonl) as handle:
            spans = parse_trace_jsonl(handle.read())
        profile = SpanProfile().add_spans(args.param, spans)
        print(render_profile(profile, top=args.top))
        return 0
    if args.experiment is None:
        raise ReproError("perf profile needs an EXPERIMENT or --jsonl PATH")
    experiment, sweep, _ = _perf_fresh_record(args, trace=True)
    profile = profile_sweep(sweep)
    print(
        f"[{experiment.experiment_id}] hot-span profile "
        f"(self time per sweep point):"
    )
    print(render_profile(profile, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bounded-variable query evaluation (Vardi, PODS 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("eval", help="evaluate a query against a database")
    p_eval.add_argument("--db", required=True, help="database file (§2.1 encoding)")
    p_eval.add_argument("--query", required=True, help="query text")
    p_eval.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_eval.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_eval.add_argument("--k-limit", type=int, default=None)
    p_eval.add_argument("--stats", action="store_true", help="print audit stats")
    p_eval.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (answer, stats, full metrics "
        "snapshot) instead of the row table",
    )
    p_eval.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the compiled straight-line plan (op sequence, "
        "per-op arity, predicted peak width) instead of evaluating",
    )
    _add_backend_argument(p_eval)
    _add_compile_argument(p_eval)
    _add_budget_arguments(p_eval)
    p_eval.set_defaults(func=_cmd_eval)

    p_trace = sub.add_parser(
        "trace",
        help="evaluate a query with span tracing and print the trace report",
    )
    p_trace.add_argument("query", help="query text")
    p_trace.add_argument("db", help="database file (§2.1 encoding)")
    p_trace.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_trace.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_trace.add_argument("--k-limit", type=int, default=None)
    p_trace.add_argument(
        "--top", type=int, default=10, help="how many hot spans to list"
    )
    p_trace.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the span tree below this depth",
    )
    _add_backend_argument(p_trace)
    _add_compile_argument(p_trace)
    p_trace.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also write the raw spans as JSONL to this file",
    )
    _add_budget_arguments(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="annotated evaluation tree: per-subformula rows, time, "
        "iterations, and predicted n^k cost; optional answer provenance",
    )
    p_explain.add_argument(
        "--db", default=None, help="database file (§2.1 encoding)"
    )
    p_explain.add_argument("--query", default=None, help="query text")
    p_explain.add_argument(
        "--experiment",
        default=None,
        metavar="NAME",
        help="explain a registered perf experiment (T2-FP, T2-FO, ...) "
        "instead of --db/--query",
    )
    p_explain.add_argument(
        "--size",
        type=float,
        default=None,
        metavar="N",
        help="parameter for --experiment (default: its largest)",
    )
    p_explain.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_explain.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_explain.add_argument("--k-limit", type=int, default=None)
    p_explain.add_argument(
        "--why",
        nargs="*",
        default=None,
        metavar="VALUE",
        help="also explain why this answer tuple holds (or fails): "
        "a provenance witness, replayed against the database",
    )
    p_explain.add_argument(
        "--progress",
        action="store_true",
        help="emit heartbeat lines (iteration, delta, ETA) to stderr "
        "while fixpoints iterate",
    )
    p_explain.add_argument(
        "--progress-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="minimum seconds between heartbeat lines (default 1.0)",
    )
    p_explain.add_argument(
        "--deviation",
        type=float,
        default=4.0,
        metavar="X",
        help="flag nodes whose measured share exceeds X times the "
        "predicted share (default 4.0)",
    )
    p_explain.add_argument(
        "--report-file",
        default=None,
        metavar="PATH",
        help="also write the rendered report to this file",
    )
    p_explain.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also write the raw spans as JSONL to this file",
    )
    p_explain.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="render a recorded trace JSONL instead of evaluating — "
        "e.g. a served request's cross-process trace "
        "(repro serve --smoke --trace-out)",
    )
    p_explain.add_argument(
        "--plan",
        action="store_true",
        help="also print the compiled straight-line plan for every "
        "compilable region (fixpoint bodies included)",
    )
    _add_backend_argument(p_explain)
    _add_compile_argument(p_explain)
    _add_budget_arguments(p_explain)
    p_explain.set_defaults(func=_cmd_explain)

    p_tdiff = sub.add_parser(
        "trace-diff",
        help="align two exported trace JSONL files by subformula path "
        "and report self-time/count deltas (also: repro trace diff A B)",
    )
    p_tdiff.add_argument("trace_a", help="baseline trace JSONL file")
    p_tdiff.add_argument("trace_b", help="comparison trace JSONL file")
    p_tdiff.add_argument(
        "--label-a", default=None, help="display label for the first trace"
    )
    p_tdiff.add_argument(
        "--label-b", default=None, help="display label for the second trace"
    )
    p_tdiff.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="K",
        help="how many paths to show (largest |delta self| first)",
    )
    p_tdiff.set_defaults(func=_cmd_trace_diff)

    p_sweep = sub.add_parser(
        "sweep",
        help="scaling sweep of a query over seeded random databases",
    )
    p_sweep.add_argument("--query", required=True, help="query text")
    p_sweep.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        required=True,
        metavar="N",
        help="database sizes to sweep",
    )
    p_sweep.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = serial; results are identical)",
    )
    p_sweep.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_sweep.add_argument(
        "--cache",
        action="store_true",
        help="enable the subquery result cache (per point)",
    )
    p_sweep.add_argument("--k-limit", type=int, default=None)
    _add_backend_argument(p_sweep)
    _add_compile_argument(p_sweep)
    p_sweep.add_argument(
        "--seed", type=int, default=0, help="random-database seed"
    )
    p_sweep.add_argument(
        "--edge-prob",
        type=float,
        default=0.3,
        metavar="P",
        help="edge probability of the random digraph",
    )
    p_sweep.add_argument(
        "--repetitions",
        type=int,
        default=1,
        metavar="R",
        help="timed runs per point (minimum time is reported)",
    )
    _add_budget_arguments(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_perf = sub.add_parser(
        "perf",
        help="perf observatory: run records, baselines, regression gate",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    def _add_run_arguments(p, with_jobs=True):
        p.add_argument(
            "--sizes",
            nargs="+",
            type=float,
            default=None,
            metavar="N",
            help="override the experiment's swept parameters",
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-point deadline (0 disables)",
        )
        p.add_argument(
            "--set",
            action="append",
            default=None,
            metavar="KEY=VALUE",
            help="override an experiment option (repeatable)",
        )
        p.add_argument(
            "--repetitions",
            type=int,
            default=None,
            metavar="R",
            help="timed runs per point (minimum time is recorded)",
        )
        if with_jobs:
            p.add_argument(
                "--jobs",
                type=int,
                default=1,
                metavar="N",
                help="worker processes for the sweep",
            )
        p.add_argument(
            "--store",
            default=DEFAULT_STORE,
            metavar="DIR",
            help=f"run-store root (default: {DEFAULT_STORE})",
        )

    p_record = perf_sub.add_parser(
        "record",
        help="run an experiment and archive a machine-readable run record",
    )
    p_record.add_argument("experiment", help="experiment id or bench module")
    _add_run_arguments(p_record)
    p_record.add_argument(
        "--baseline",
        action="store_true",
        help="(re)write BENCH_<id>.json from this run "
        "(always written when missing)",
    )
    p_record.add_argument(
        "--spans",
        action="store_true",
        help="embed per-point span traces in the record (for profiling)",
    )
    p_record.set_defaults(func=_cmd_perf_record)

    p_compare = perf_sub.add_parser(
        "compare",
        help="gate a fresh (or the latest archived) run against the baseline",
    )
    p_compare.add_argument("experiment", help="experiment id or bench module")
    _add_run_arguments(p_compare)
    p_compare.add_argument(
        "--use-latest",
        action="store_true",
        help="compare the latest archived record instead of running fresh",
    )
    p_compare.add_argument(
        "--counters-only",
        action="store_true",
        help="tier-1 policy: deterministic counters only (the CI gate)",
    )
    p_compare.add_argument(
        "--seconds-ratio",
        type=float,
        default=2.0,
        metavar="X",
        help="tier-2 wall-clock band: fresh <= X * baseline per point",
    )
    p_compare.add_argument(
        "--degree-band",
        type=float,
        default=0.5,
        metavar="D",
        help="tier-2 band on fitted growth coefficients",
    )
    p_compare.add_argument(
        "--save",
        action="store_true",
        help="also archive the fresh record into the store",
    )
    p_compare.add_argument(
        "--json",
        action="store_true",
        help="print the structured diff report as JSON",
    )
    p_compare.add_argument("--spans", action="store_true", help=argparse.SUPPRESS)
    p_compare.set_defaults(func=_cmd_perf_compare)

    p_report = perf_sub.add_parser(
        "report",
        help="show an experiment's recorded perf trajectory",
    )
    p_report.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (omit to list all recorded experiments)",
    )
    p_report.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="DIR",
        help=f"run-store root (default: {DEFAULT_STORE})",
    )
    p_report.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="show at most the newest N index entries",
    )
    p_report.set_defaults(func=_cmd_perf_report)

    p_profile = perf_sub.add_parser(
        "profile",
        help="cross-run hot-span profile: self time by span name per point",
    )
    p_profile.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id or bench module (traced sweep)",
    )
    _add_run_arguments(p_profile, with_jobs=False)
    p_profile.add_argument(
        "--jobs", type=int, default=1, help=argparse.SUPPRESS
    )
    p_profile.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="profile an exported trace JSONL file instead of running",
    )
    p_profile.add_argument(
        "--param",
        type=float,
        default=0.0,
        metavar="P",
        help="parameter label for --jsonl input (default 0)",
    )
    p_profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="how many span names to list",
    )
    p_profile.set_defaults(func=_cmd_perf_profile)

    p_info = sub.add_parser("info", help="classify and measure a query")
    p_info.add_argument("--query", required=True)
    p_info.set_defaults(func=_cmd_info)

    p_min = sub.add_parser("minimize", help="minimize a query's variables")
    p_min.add_argument("--query", required=True)
    p_min.set_defaults(func=_cmd_minimize)

    p_enc = sub.add_parser("encode", help="canonicalize a database file")
    p_enc.add_argument("--db", required=True)
    p_enc.set_defaults(func=_cmd_encode)

    p_dl = sub.add_parser("datalog", help="run a Datalog program")
    p_dl.add_argument("--db", required=True)
    p_dl.add_argument("--program", required=True)
    p_dl.add_argument("--pred", default=None, help="predicate to print")
    _add_budget_arguments(p_dl)
    p_dl.set_defaults(func=_cmd_datalog)

    from repro.serve.cli import add_serve_parser

    add_serve_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `repro trace diff A B` is the natural spelling of the trace-diff
    # subcommand; rewrite it before argparse sees a positional "diff"
    if len(argv) >= 2 and argv[0] == "trace" and argv[1] == "diff":
        argv = ["trace-diff"] + list(argv[2:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ResourceExhausted as exc:
        # before the generic ReproError handler: budget exhaustion gets
        # its own exit code so scripts can tell "too big" from "wrong"
        print(f"resource exhausted: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
