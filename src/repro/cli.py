"""Command-line interface: evaluate queries against encoded databases.

Usage (also via ``python -m repro``)::

    # evaluate a query against a database file (standard §2.1 encoding)
    python -m repro eval --db company.db --query "exists y. E(x, y)" --out x

    # inspect a query: language, width, size
    python -m repro info --query "[lfp S(x). P(x) | S(x)](u)"

    # minimize a query's variables
    python -m repro minimize --query "exists z1. exists z2. (E(x,z1) & E(z1,z2) & E(z2,y))"

    # run a Datalog program
    python -m repro datalog --db graph.db --program rules.dl --pred reach

    # trace an evaluation: span tree, hot spans, optional JSONL export
    python -m repro trace "[lfp S(x). P(x) | exists y. (E(y,x) & S(y))](u)" graph.db

    # scaling sweep over seeded random databases, 2 worker processes
    python -m repro sweep --query "[lfp S(x,y). E(x,y) | exists z. (E(x,z) & S(z,y))](u,v)" \
        --sizes 4 8 12 --jobs 2 --strategy seminaive --cache

Database files contain the standard encoding produced by
:func:`repro.database.encoding.encode_database`.

Resource budgets: ``eval``, ``trace``, and ``datalog`` accept
``--timeout SECONDS``, ``--max-iterations N``, and ``--max-rows N``;
exceeding any of them aborts the evaluation cleanly (see
``docs/robustness.md``).

Exit codes:

====  =============================================================
0     success
1     a :class:`~repro.errors.ReproError` (bad query, missing
      relation, …) or missing file
2     usage error (argparse)
124   a resource budget or deadline was exhausted
      (:class:`~repro.errors.ResourceExhausted` — same convention as
      ``timeout(1)``)
====  =============================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.encoding import decode_database, encode_database
from repro.errors import ReproError, ResourceExhausted
from repro.guard.budget import Budget

#: Exit code for exhausted budgets/deadlines, matching ``timeout(1)``.
EXIT_RESOURCE_EXHAUSTED = 124
from repro.logic.analysis import alternation_depth, classify_language
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula, formula_length
from repro.logic.variables import free_variables, variable_width


def _load_db(path: str):
    with open(path) as handle:
        return decode_database(handle.read().strip())


def _budget_from_args(args: argparse.Namespace) -> Optional[Budget]:
    budget = Budget(
        deadline_seconds=getattr(args, "timeout", None),
        max_iterations=getattr(args, "max_iterations", None),
        max_rows=getattr(args, "max_rows", None),
    )
    return None if budget.is_unlimited() else budget


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; exceeding it exits with code 124",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="bound on fixpoint/round iterations",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="bound on any single intermediate relation (the n^k invariant)",
    )


def _cmd_eval(args: argparse.Namespace) -> int:
    db = _load_db(args.db)
    formula = parse_formula(args.query)
    out = tuple(args.out or sorted(free_variables(formula)))
    options = EvalOptions(
        strategy=FixpointStrategy(args.strategy),
        k_limit=args.k_limit,
        budget=_budget_from_args(args),
    )
    result = evaluate(formula, db, out, options)
    if not out:
        print("true" if result.as_bool() else "false")
    else:
        print("\t".join(out))
        for row in sorted(result.relation.tuples, key=repr):
            print("\t".join(str(v) for v in row))
    if args.stats:
        stats = result.stats
        print(
            f"# language={result.language.value} "
            f"table_ops={stats.table_ops} "
            f"max_rows={stats.max_intermediate_rows} "
            f"max_arity={stats.max_intermediate_arity} "
            f"fixpoint_iterations={stats.fixpoint_iterations} "
            f"sat_variables={stats.sat_variables} "
            f"sat_clauses={stats.sat_clauses}",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, render_report

    db = _load_db(args.db)
    formula = parse_formula(args.query)
    out = tuple(args.out or sorted(free_variables(formula)))
    tracer = Tracer()
    options = EvalOptions(
        strategy=FixpointStrategy(args.strategy),
        k_limit=args.k_limit,
        trace=tracer,
        budget=_budget_from_args(args),
    )
    result = evaluate(formula, db, out, options)
    answer = (
        ("true" if result.as_bool() else "false")
        if not out
        else f"{len(result.relation)} row(s)"
    )
    print(f"answer: {answer}  (language={result.language.value})")
    print()
    print(
        render_report(
            tracer,
            registry=result.stats.registry,
            top_k=args.top,
            max_depth=args.max_depth,
        )
    )
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(tracer.export_jsonl() + "\n")
        print(f"\n# wrote {len(tracer.spans)} span(s) to {args.jsonl}")
    return 0


def _sweep_database(n: int, seed: int, edge_prob: float):
    """A seeded random labeled digraph over ``{0, …, n-1}``.

    ``E`` holds each ordered pair independently with ``edge_prob``;
    ``P`` marks the even elements and ``Q`` the multiples of three, so
    FO^k corpus queries over the standard test schema run unchanged.
    """
    import random

    from repro.database.database import Database

    rng = random.Random(seed * 1_000_003 + n)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < edge_prob
    ]
    return Database.from_tuples(
        range(n),
        {
            "E": (2, edges),
            "P": (1, [(i,) for i in range(0, n, 2)]),
            "Q": (1, [(i,) for i in range(0, n, 3)]),
        },
    )


def _sweep_workload(
    parameter: float,
    query: str = "",
    out: tuple = (),
    strategy: str = FixpointStrategy.MONOTONE.value,
    cache: bool = False,
    budget: Optional[Budget] = None,
    k_limit: Optional[int] = None,
    seed: int = 0,
    edge_prob: float = 0.3,
) -> dict:
    """One sweep point: evaluate the query at database size ``parameter``.

    Module-level so ``functools.partial`` over it stays picklable —
    ``--jobs N`` ships it to worker processes.  The budget's deadline is
    anchored when the evaluation starts, i.e. per point and per worker.
    """
    db = _sweep_database(int(parameter), seed, edge_prob)
    formula = parse_formula(query)
    options = EvalOptions(
        strategy=FixpointStrategy(strategy),
        k_limit=k_limit,
        budget=budget,
        subquery_cache=cache,
    )
    result = evaluate(formula, db, out, options)
    counters = {"answer_rows": float(len(result.relation))}
    for key, value in result.stats.as_dict().items():
        counters[key] = float(value)
    return counters


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools

    from repro.complexity.measure import run_sweep

    formula = parse_formula(args.query)
    out = tuple(args.out or sorted(free_variables(formula)))
    workload = functools.partial(
        _sweep_workload,
        query=args.query,
        out=out,
        strategy=args.strategy,
        cache=args.cache,
        budget=_budget_from_args(args),
        k_limit=args.k_limit,
        seed=args.seed,
        edge_prob=args.edge_prob,
    )
    result = run_sweep(
        "cli-sweep",
        args.sizes,
        workload,
        repetitions=args.repetitions,
        warmup=args.repetitions > 1,
        parallel=args.jobs,
    )
    print(
        result.format_rows(
            ["answer_rows", "fixpoint_iterations", "max_intermediate_rows"]
        )
    )
    failures = result.failures()
    for point in failures:
        print(
            f"# n={point.parameter:g}: {point.outcome}: {point.error}",
            file=sys.stderr,
        )
    if any(p.outcome == "timeout" for p in failures):
        return EXIT_RESOURCE_EXHAUSTED
    return 1 if failures else 0


def _cmd_info(args: argparse.Namespace) -> int:
    formula = parse_formula(args.query)
    print(f"formula   : {format_formula(formula)}")
    print(f"language  : {classify_language(formula).value}")
    print(f"width (k) : {variable_width(formula)}")
    print(f"free vars : {', '.join(sorted(free_variables(formula))) or '-'}")
    print(f"|e|       : {formula_length(formula)}")
    print(f"alt depth : {alternation_depth(formula)}")
    return 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.optimize import minimize_variables

    formula = parse_formula(args.query)
    minimized = minimize_variables(formula)
    print(format_formula(minimized))
    print(
        f"# width {variable_width(formula)} -> {variable_width(minimized)}",
        file=sys.stderr,
    )
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    # round-trip/canonicalize a database file
    db = _load_db(args.db)
    print(encode_database(db))
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    from repro.datalog import parse_program, semi_naive
    from repro.guard.budget import resolve_guard

    db = _load_db(args.db)
    with open(args.program) as handle:
        program = parse_program(handle.read())
    guard = resolve_guard(_budget_from_args(args))
    results = semi_naive(program, db, guard=guard)
    predicates = [args.pred] if args.pred else sorted(results)
    for predicate in predicates:
        if predicate not in results:
            raise ReproError(f"program does not define {predicate!r}")
        for row in sorted(results[predicate].tuples, key=repr):
            print(f"{predicate}(" + ", ".join(str(v) for v in row) + ")")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bounded-variable query evaluation (Vardi, PODS 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("eval", help="evaluate a query against a database")
    p_eval.add_argument("--db", required=True, help="database file (§2.1 encoding)")
    p_eval.add_argument("--query", required=True, help="query text")
    p_eval.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_eval.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_eval.add_argument("--k-limit", type=int, default=None)
    p_eval.add_argument("--stats", action="store_true", help="print audit stats")
    _add_budget_arguments(p_eval)
    p_eval.set_defaults(func=_cmd_eval)

    p_trace = sub.add_parser(
        "trace",
        help="evaluate a query with span tracing and print the trace report",
    )
    p_trace.add_argument("query", help="query text")
    p_trace.add_argument("db", help="database file (§2.1 encoding)")
    p_trace.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_trace.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_trace.add_argument("--k-limit", type=int, default=None)
    p_trace.add_argument(
        "--top", type=int, default=10, help="how many hot spans to list"
    )
    p_trace.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the span tree below this depth",
    )
    p_trace.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="also write the raw spans as JSONL to this file",
    )
    _add_budget_arguments(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_sweep = sub.add_parser(
        "sweep",
        help="scaling sweep of a query over seeded random databases",
    )
    p_sweep.add_argument("--query", required=True, help="query text")
    p_sweep.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        required=True,
        metavar="N",
        help="database sizes to sweep",
    )
    p_sweep.add_argument(
        "--out",
        nargs="*",
        help="output variables (default: the free variables, sorted)",
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = serial; results are identical)",
    )
    p_sweep.add_argument(
        "--strategy",
        choices=[s.value for s in FixpointStrategy],
        default=FixpointStrategy.MONOTONE.value,
        help="fixpoint strategy for FP queries",
    )
    p_sweep.add_argument(
        "--cache",
        action="store_true",
        help="enable the subquery result cache (per point)",
    )
    p_sweep.add_argument("--k-limit", type=int, default=None)
    p_sweep.add_argument(
        "--seed", type=int, default=0, help="random-database seed"
    )
    p_sweep.add_argument(
        "--edge-prob",
        type=float,
        default=0.3,
        metavar="P",
        help="edge probability of the random digraph",
    )
    p_sweep.add_argument(
        "--repetitions",
        type=int,
        default=1,
        metavar="R",
        help="timed runs per point (minimum time is reported)",
    )
    _add_budget_arguments(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_info = sub.add_parser("info", help="classify and measure a query")
    p_info.add_argument("--query", required=True)
    p_info.set_defaults(func=_cmd_info)

    p_min = sub.add_parser("minimize", help="minimize a query's variables")
    p_min.add_argument("--query", required=True)
    p_min.set_defaults(func=_cmd_minimize)

    p_enc = sub.add_parser("encode", help="canonicalize a database file")
    p_enc.add_argument("--db", required=True)
    p_enc.set_defaults(func=_cmd_encode)

    p_dl = sub.add_parser("datalog", help="run a Datalog program")
    p_dl.add_argument("--db", required=True)
    p_dl.add_argument("--program", required=True)
    p_dl.add_argument("--pred", default=None, help="predicate to print")
    _add_budget_arguments(p_dl)
    p_dl.set_defaults(func=_cmd_datalog)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ResourceExhausted as exc:
        # before the generic ReproError handler: budget exhaustion gets
        # its own exit code so scripts can tell "too big" from "wrong"
        print(f"resource exhausted: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
