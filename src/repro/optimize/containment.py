"""Conjunctive-query containment and minimization [CM77].

The paper's opening citation — Chandra & Merlin's "Optimal implementation
of conjunctive queries" — is the other classical query-optimization
lever: a conjunctive query has a unique minimal equivalent form, found by
folding the query into itself.  Containment ``Q1 ⊆ Q2`` holds iff there
is a *homomorphism* from ``Q2`` to ``Q1`` (map variables to variables or
constants, preserving atoms and the head).

Together with :mod:`repro.optimize.variable_min` this gives the two
optimizations the paper's program suggests: minimize the *atoms* (fewer
joins, [CM77]) and minimize the *variables* (bounded intermediates, this
paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SyntaxError_
from repro.logic.syntax import Const, Exists, Formula, And, RelAtom, Term, Var
from repro.logic.builders import and_, exists


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``head(x̄) ← atom_1, ..., atom_m`` with relation/constant atoms."""

    atoms: Tuple[RelAtom, ...]
    head: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", tuple(self.atoms))
        object.__setattr__(self, "head", tuple(self.head))
        body_vars = {
            t.name
            for atom in self.atoms
            for t in atom.terms
            if isinstance(t, Var)
        }
        missing = set(self.head) - body_vars
        if missing:
            raise SyntaxError_(
                f"unsafe conjunctive query: head variables "
                f"{sorted(missing)} not in the body"
            )

    @classmethod
    def from_formula(
        cls, formula: Formula, output_vars: Sequence[str]
    ) -> "ConjunctiveQuery":
        """Peel ``∃x̄ (A_1 ∧ ... ∧ A_m)`` into a conjunctive query."""
        body = formula
        while isinstance(body, Exists):
            body = body.sub
        parts = body.subs if isinstance(body, And) else (body,)
        atoms = []
        for part in parts:
            if not isinstance(part, RelAtom):
                raise SyntaxError_(
                    "conjunctive queries are ∃-prefixed conjunctions of "
                    f"relation atoms; found {type(part).__name__}"
                )
            atoms.append(part)
        return cls(tuple(atoms), tuple(output_vars))

    def to_formula(self) -> Formula:
        """Back to an FO formula (∃ over the non-head variables)."""
        body_vars = sorted(
            {
                t.name
                for atom in self.atoms
                for t in atom.terms
                if isinstance(t, Var)
            }
            - set(self.head)
        )
        matrix = and_(*self.atoms) if self.atoms else _true()
        return exists(body_vars, matrix) if body_vars else matrix

    def variables(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for atom in self.atoms:
            for t in atom.terms:
                if isinstance(t, Var) and t.name not in seen:
                    seen.append(t.name)
        return tuple(seen)


def _true():
    from repro.logic.builders import true_

    return true_()


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Dict[str, Term]]:
    """A homomorphism ``source → target``: a variable mapping preserving
    every atom (into the target's atom set) and fixing the head.

    Head variables must map to the target's head variables positionally
    (the queries' answers line up column by column).  Returns the mapping
    or ``None``.
    """
    if len(source.head) != len(target.head):
        return None
    mapping: Dict[str, Term] = {}
    for s_var, t_var in zip(source.head, target.head):
        existing = mapping.get(s_var)
        if existing is not None and existing != Var(t_var):
            return None
        mapping[s_var] = Var(t_var)
    target_atoms = set(target.atoms)

    def image(term: Term, binding: Dict[str, Term]) -> Optional[Term]:
        if isinstance(term, Const):
            return term
        return binding.get(term.name)

    def backtrack(index: int, binding: Dict[str, Term]) -> Optional[Dict[str, Term]]:
        if index == len(source.atoms):
            return dict(binding)
        atom = source.atoms[index]
        for candidate in target_atoms:
            if candidate.name != atom.name or len(candidate.terms) != len(
                atom.terms
            ):
                continue
            extended = dict(binding)
            ok = True
            for s_term, t_term in zip(atom.terms, candidate.terms):
                if isinstance(s_term, Const):
                    if s_term != t_term:
                        ok = False
                        break
                    continue
                bound = extended.get(s_term.name)
                if bound is None:
                    extended[s_term.name] = t_term
                elif bound != t_term:
                    ok = False
                    break
            if ok:
                solution = backtrack(index + 1, extended)
                if solution is not None:
                    return solution
        return None

    return backtrack(0, mapping)


def is_contained(smaller: ConjunctiveQuery, larger: ConjunctiveQuery) -> bool:
    """``smaller ⊆ larger`` on every database (the [CM77] criterion:
    a homomorphism from ``larger`` into ``smaller``)."""
    return find_homomorphism(larger, smaller) is not None


def are_equivalent(a: ConjunctiveQuery, b: ConjunctiveQuery) -> bool:
    """Containment both ways."""
    return is_contained(a, b) and is_contained(b, a)


def minimize_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The [CM77] core: drop atoms while an endomorphism justifies it.

    Repeatedly try removing one atom; the smaller query is equivalent iff
    it is still contained in the original (the other containment is free
    — removing atoms only relaxes).  The result is the unique minimal
    equivalent query up to renaming.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate_atoms = (
                current.atoms[:index] + current.atoms[index + 1:]
            )
            try:
                candidate = ConjunctiveQuery(candidate_atoms, current.head)
            except SyntaxError_:
                continue  # removal would orphan a head variable
            if is_contained(candidate, current):
                current = candidate
                changed = True
                break
    return current
