"""Variable minimization as query optimization (Sections 1-2).

The paper's closing suggestion: since bounded-variable queries evaluate
with polynomially bounded intermediates, *minimizing the number of
variables* is a query-optimization methodology.  This subpackage
implements it:

* :mod:`~repro.optimize.variable_min` — rename bound variables to reuse
  names wherever scoping permits (conflict-graph coloring), lowering the
  query's width ``k`` and hence the engine's intermediate-arity bound;
* the Section 2.2 showcase — the ``n``-step path query dropping from
  ``n+1`` variables to 3 — lives in
  :func:`repro.workloads.formulas.path_query_fo3`.
"""

from repro.optimize.variable_min import minimize_variables

__all__ = ["minimize_variables"]
