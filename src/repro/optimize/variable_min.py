"""Bound-variable renaming for width minimization.

Pipeline:

1. rename bound variables apart (one unique name per binder);
2. build the *conflict graph*: two binders conflict when one's scope
   contains the other's binder **and** the outer variable still occurs
   inside the inner scope (renaming them alike would capture it); a
   binder conflicts with a free variable of the query under the same
   containment condition; variables bound together by one fixpoint
   operator conflict pairwise;
3. greedily color the binders (outermost first), preferring to reuse the
   query's free-variable names, then a minimal pool of fresh names;
4. apply the coloring as a simultaneous raw renaming — safe exactly
   because the conflict graph forbids every capture.

This is a heuristic minimizer (optimal bound-variable width is as hard
as deciding equivalence), but it recovers the paper's Section 2.2
showcase: the naive ``n+1``-variable path query collapses to 3 variables.
The result is always logically equivalent to the input — property-tested
against the reference semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SyntaxError_
from repro.logic.substitution import rename_bound_apart
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_variables, variable_names, variable_width


@dataclass
class _Binder:
    """One binding site in the renamed-apart formula."""

    unique_name: str
    scope_names: Set[str]         # all variable names occurring in scope
    group: Tuple[str, ...]        # co-bound variables (fixpoint tuples)
    depth: int
    ancestors: Tuple[str, ...]    # unique names of enclosing binders


def minimize_variables(formula: Formula, miniscope_first: bool = True) -> Formula:
    """An equivalent formula using as few variable names as the coloring finds.

    ``miniscope_first`` pushes quantifiers inward before coloring — without
    it, a block of top-level quantifiers keeps every variable live across
    the whole body and nothing can be reused.  Miniscoping drops vacuous
    quantifiers, which assumes a non-empty domain (every database in the
    paper has one; pass ``miniscope_first=False`` for empty-domain work).

    The output's width is never larger than the input's
    (``variable_width`` is checked; the original is returned when the
    rewrite does not improve on it).
    """
    apart = rename_bound_apart(formula)
    if miniscope_first:
        # miniscoping can duplicate a binder (∃x.(φ ∨ ψ) → ∃x.φ ∨ ∃x.ψ),
        # so the result must be renamed apart again: two binders sharing
        # a name would collide in the coloring and capture free variables
        apart = rename_bound_apart(miniscope(apart))
    binders: List[_Binder] = []
    _collect(apart, 0, binders, ())
    free = sorted(free_variables(apart))
    coloring = _color(binders, free)
    if not coloring:
        candidate = apart
    else:
        candidate = _raw_rename(apart, coloring)
    if variable_width(candidate) >= variable_width(formula):
        return formula
    return candidate


def miniscope(formula: Formula) -> Formula:
    """Push quantifiers inward to shrink their scopes.

    Equivalences used (over non-empty domains):

    * ``∃x (A ∧ B) = A ∧ ∃x B``  when ``x ∉ free(A)`` (and dually ``∀/∨``)
    * ``∃x (A ∨ B) = ∃x A ∨ ∃x B``  and  ``∀x (A ∧ B) = ∀x A ∧ ∀x B``
    * ``∃x φ = φ``  when ``x ∉ free(φ)`` (non-empty domain)
    * ``∃x ∃y φ`` commutes so the outer quantifier can keep sinking.
    """
    if isinstance(formula, (RelAtom, Equals, Truth)):
        return formula
    if isinstance(formula, Not):
        return Not(miniscope(formula.sub))
    if isinstance(formula, And):
        return And(tuple(miniscope(s) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(miniscope(s) for s in formula.subs))
    if isinstance(formula, (Exists, Forall)):
        return _sink(type(formula), formula.var, miniscope(formula.sub))
    if isinstance(formula, _FixpointBase):
        return type(formula)(
            formula.rel, formula.bound_vars, miniscope(formula.body), formula.args
        )
    if isinstance(formula, SOExists):
        return SOExists(formula.rel, formula.arity, miniscope(formula.body))
    raise SyntaxError_(f"unknown formula node {formula!r}")


def _sink(node_type, var: Var, body: Formula) -> Formula:
    """Push one quantifier into an already-miniscoped body."""
    name = var.name
    if name not in free_variables(body):
        return body  # vacuous on a non-empty domain
    distributive = And if node_type is Forall else Or
    partitionable = Or if node_type is Forall else And
    if isinstance(body, distributive):
        return distributive(
            tuple(_sink(node_type, var, s) for s in body.subs)
        )
    if isinstance(body, partitionable):
        with_var = [s for s in body.subs if name in free_variables(s)]
        without = [s for s in body.subs if name not in free_variables(s)]
        if without:
            inner = (
                with_var[0]
                if len(with_var) == 1
                else partitionable(tuple(with_var))
            )
            return partitionable(
                tuple(without) + (_sink(node_type, var, inner),)
            )
    if isinstance(body, node_type):
        # commute same-kind quantifiers so this one can keep sinking
        sunk = _sink(node_type, var, body.sub)
        if sunk != node_type(var, body.sub):
            return node_type(body.var, sunk)
    return node_type(var, body)


def _collect(
    formula: Formula,
    depth: int,
    out: List[_Binder],
    ancestors: Tuple[str, ...],
) -> None:
    if isinstance(formula, (Exists, Forall)):
        name = formula.var.name
        out.append(
            _Binder(
                unique_name=name,
                scope_names=set(variable_names(formula.sub)),
                group=(name,),
                depth=depth,
                ancestors=ancestors,
            )
        )
        _collect(formula.sub, depth + 1, out, ancestors + (name,))
        return
    if isinstance(formula, _FixpointBase):
        group = tuple(v.name for v in formula.bound_vars)
        names = set(variable_names(formula.body))
        for name in group:
            out.append(
                _Binder(
                    unique_name=name,
                    scope_names=names,
                    group=group,
                    depth=depth,
                    ancestors=ancestors,
                )
            )
        _collect(formula.body, depth + 1, out, ancestors + group)
        return
    for child in formula.children():
        _collect(child, depth, out, ancestors)


def _color(binders: List[_Binder], free: List[str]) -> Dict[str, str]:
    """Greedy coloring; returns unique-name → final-name."""
    conflicts: Dict[str, Set[str]] = {b.unique_name: set() for b in binders}
    for binder in binders:
        # an enclosing binder whose variable is still live inside this
        # binder's scope must keep a different name (capture otherwise)
        for ancestor in binder.ancestors:
            if ancestor in binder.scope_names:
                conflicts[binder.unique_name].add(ancestor)
                conflicts[ancestor].add(binder.unique_name)
        # co-bound fixpoint variables conflict pairwise
        for sibling in binder.group:
            if sibling != binder.unique_name:
                conflicts[binder.unique_name].add(sibling)
    # color pool: free-variable names first (reusable), then fresh names
    fresh = (f"v{i}" for i in itertools.count())
    pool: List[str] = list(free)
    assignment: Dict[str, str] = {}
    ordered = sorted(binders, key=lambda b: b.depth)
    for binder in ordered:
        taken: Set[str] = set()
        for other in conflicts[binder.unique_name]:
            if other in assignment:
                taken.add(assignment[other])
        # free variables of the query conflict when they occur in scope
        for name in free:
            if name in binder.scope_names:
                taken.add(name)
        chosen: Optional[str] = None
        for candidate in pool:
            if candidate not in taken:
                chosen = candidate
                break
        if chosen is None:
            chosen = next(fresh)
            while chosen in taken:
                chosen = next(fresh)
            pool.append(chosen)
        assignment[binder.unique_name] = chosen
    return assignment


def _rename_term(term: Term, mapping: Dict[str, str]) -> Term:
    if isinstance(term, Var) and term.name in mapping:
        return Var(mapping[term.name])
    return term


def _raw_rename(formula: Formula, mapping: Dict[str, str]) -> Formula:
    """Simultaneous rename of binders and their occurrences.

    Only valid for renamed-apart formulas with a capture-free mapping —
    which is what the conflict coloring guarantees.
    """
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.name, tuple(_rename_term(t, mapping) for t in formula.terms)
        )
    if isinstance(formula, Equals):
        return Equals(
            _rename_term(formula.left, mapping),
            _rename_term(formula.right, mapping),
        )
    if isinstance(formula, Truth):
        return formula
    if isinstance(formula, Not):
        return Not(_raw_rename(formula.sub, mapping))
    if isinstance(formula, And):
        return And(tuple(_raw_rename(s, mapping) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(_raw_rename(s, mapping) for s in formula.subs))
    if isinstance(formula, (Exists, Forall)):
        var = Var(mapping.get(formula.var.name, formula.var.name))
        return type(formula)(var, _raw_rename(formula.sub, mapping))
    if isinstance(formula, _FixpointBase):
        bound = tuple(
            Var(mapping.get(v.name, v.name)) for v in formula.bound_vars
        )
        return type(formula)(
            formula.rel,
            bound,
            _raw_rename(formula.body, mapping),
            tuple(_rename_term(t, mapping) for t in formula.args),
        )
    if isinstance(formula, SOExists):
        return SOExists(
            formula.rel, formula.arity, _raw_rename(formula.body, mapping)
        )
    raise SyntaxError_(f"unknown formula node {formula!r}")
