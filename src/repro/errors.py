"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Sub-errors distinguish the layer at fault: malformed input
data, malformed queries, evaluation-time violations, and certificate failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A database, relation, or schema is internally inconsistent.

    Raised for arity mismatches, tuples outside the declared domain, duplicate
    relation names, and similar structural problems.
    """


class SyntaxError_(ReproError):
    """A query expression is syntactically malformed.

    Raised by the formula parser and by AST constructors that validate their
    arguments (e.g. a fixpoint whose tuple of bound variables contains
    duplicates).  Named with a trailing underscore to avoid shadowing the
    built-in :class:`SyntaxError`.
    """


class VariableBoundError(ReproError):
    """A query uses more individual variables than the engine's bound ``k``.

    The bounded-variable engines (Prop 3.1 and friends) refuse queries whose
    variable width exceeds the configured bound rather than silently blowing
    up intermediate results.
    """


class PositivityError(ReproError):
    """A least/greatest fixpoint binds a relation variable non-positively.

    Monotonicity of the fixpoint operator (Section 2.2 of the paper) requires
    the recursive relation to occur under an even number of negations; this
    error reports a violation together with the offending occurrence.
    """


class EvaluationError(ReproError):
    """Query evaluation failed (unbound variable, unknown relation, ...)."""


class CertificateError(ReproError):
    """A fixpoint membership certificate (Lemmas 3.3/3.4) failed to verify."""


class ReductionError(ReproError):
    """A lower-bound reduction received an instance it cannot translate."""


class ResourceExhausted(ReproError):
    """A configured resource budget was exhausted during evaluation.

    Raised by the cooperative checkpoints of :mod:`repro.guard` when an
    evaluation crosses one of its :class:`~repro.guard.Budget` limits.
    The exception is structured so callers (sweeps, servers, the CLI) can
    act on it without parsing the message:

    ``kind``
        Which budget tripped (``"deadline"``, ``"iterations"``, ``"rows"``,
        ``"decisions"``, ``"clauses"``, ``"states"``).
    ``limit`` / ``used``
        The configured bound and the amount consumed when it tripped.
    ``partial``
        A small dict of partial-progress readings supplied by the raising
        engine (iteration index, live relation size, rounds completed, ...).
    ``metrics``
        A snapshot of the run's unified
        :class:`~repro.obs.metrics.MetricsRegistry` at raise time.
    """

    def __init__(
        self,
        message: str,
        kind: str = "",
        limit: float = 0,
        used: float = 0,
        partial: object = None,
        metrics: object = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.limit = limit
        self.used = used
        self.partial = dict(partial or {})
        self.metrics = dict(metrics or {})


class Overloaded(ReproError):
    """The query service shed this request instead of evaluating it.

    Raised (and returned as a structured error) by the admission layer of
    :mod:`repro.serve` when a request cannot be served within its
    deadline: the bounded queue is full, the predicted queue wait already
    exceeds the tenant's deadline, the request expired while queued, or
    its retry budget ran out against injected/worker faults.

    ``retry_after``
        Seconds after which a retry is likely to be admitted (the
        ``Retry-After`` header over HTTP).
    ``reason``
        Machine-readable shed cause: ``"queue-full"``,
        ``"deadline-unreachable"``, ``"expired"``, or
        ``"retries-exhausted"``.
    ``tenant``
        The tenant whose request was shed.
    """

    def __init__(
        self,
        message: str,
        retry_after: float = 0.0,
        reason: str = "",
        tenant: str = "",
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason
        self.tenant = tenant


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before the evaluation finished."""


class IterationBudgetExceeded(ResourceExhausted):
    """A fixpoint/round iteration budget was exhausted.

    Iterations are the possibly-exponential quantity of Theorem 3.8
    (up to ``2^{n^k}`` for a partial fixpoint).
    """


class SpaceBudgetExceeded(ResourceExhausted):
    """An intermediate relation outgrew the row budget.

    Rows are the paper's polynomial quantity: Prop 3.1 bounds every
    intermediate result of an ``L^k`` query by ``n^k`` rows.
    """


class DecisionBudgetExceeded(ResourceExhausted):
    """The SAT solver exhausted its decision budget."""


class ClauseBudgetExceeded(ResourceExhausted):
    """A grounded formula / CNF outgrew the clause budget.

    Clauses are the Corollary 3.7 quantity: the grounded instance of an
    ESO^k query is polynomial after the Lemma 3.6 rewriting.
    """


class StateBudgetExceeded(ResourceExhausted):
    """A cycle-detection state set outgrew the state budget.

    PFP cycle detection may remember up to ``2^{n^k}`` stage relations;
    the budget caps that set (engines with a strict O(1)-memory mode fall
    back to it instead of raising).
    """
