"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Sub-errors distinguish the layer at fault: malformed input
data, malformed queries, evaluation-time violations, and certificate failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A database, relation, or schema is internally inconsistent.

    Raised for arity mismatches, tuples outside the declared domain, duplicate
    relation names, and similar structural problems.
    """


class SyntaxError_(ReproError):
    """A query expression is syntactically malformed.

    Raised by the formula parser and by AST constructors that validate their
    arguments (e.g. a fixpoint whose tuple of bound variables contains
    duplicates).  Named with a trailing underscore to avoid shadowing the
    built-in :class:`SyntaxError`.
    """


class VariableBoundError(ReproError):
    """A query uses more individual variables than the engine's bound ``k``.

    The bounded-variable engines (Prop 3.1 and friends) refuse queries whose
    variable width exceeds the configured bound rather than silently blowing
    up intermediate results.
    """


class PositivityError(ReproError):
    """A least/greatest fixpoint binds a relation variable non-positively.

    Monotonicity of the fixpoint operator (Section 2.2 of the paper) requires
    the recursive relation to occur under an even number of negations; this
    error reports a violation together with the offending occurrence.
    """


class EvaluationError(ReproError):
    """Query evaluation failed (unbound variable, unknown relation, ...)."""


class CertificateError(ReproError):
    """A fixpoint membership certificate (Lemmas 3.3/3.4) failed to verify."""


class ReductionError(ReproError):
    """A lower-bound reduction received an instance it cannot translate."""
