"""Growth-rate classification: polynomial vs exponential scaling.

Fits two models to a series ``(n_i, y_i)``:

* polynomial: ``log y = d·log n + c``  (degree ``d``),
* exponential: ``log y = r·n + c``     (base ``e^r``),

by least squares, and classifies by which model has the smaller residual.
This is how the benchmark harness turns the paper's complexity-class
claims ("PTIME" vs "EXPTIME-complete") into checkable statements about
measured curves: a Table 2 engine should classify as polynomial in
``|B| + |e|``; the unbounded baselines of Table 1 should classify as
exponential in the expression parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class GrowthFit:
    """Outcome of fitting one model."""

    model: str          # 'polynomial' | 'exponential'
    coefficient: float  # degree d, or rate r (base = e^r)
    intercept: float
    residual: float     # mean squared residual in log space

    @property
    def base(self) -> float:
        """For the exponential model: the per-unit growth factor."""
        return math.exp(self.coefficient)


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Slope, intercept, mean squared residual of a 1-D linear fit."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    ) / n
    return slope, intercept, residual


def _positive(values: Sequence[float], floor: float = 1e-12) -> List[float]:
    return [max(v, floor) for v in values]


def fit_polynomial(ns: Sequence[float], ys: Sequence[float]) -> GrowthFit:
    """Fit ``y ≈ c · n^d`` (log-log linear regression)."""
    log_n = [math.log(n) for n in _positive(ns)]
    log_y = [math.log(y) for y in _positive(ys)]
    slope, intercept, residual = _least_squares(log_n, log_y)
    return GrowthFit("polynomial", slope, intercept, residual)


def fit_exponential(ns: Sequence[float], ys: Sequence[float]) -> GrowthFit:
    """Fit ``y ≈ c · b^n`` (semi-log linear regression)."""
    log_y = [math.log(y) for y in _positive(ys)]
    slope, intercept, residual = _least_squares(list(ns), log_y)
    return GrowthFit("exponential", slope, intercept, residual)


def classify_growth(
    ns: Sequence[float], ys: Sequence[float]
) -> Tuple[str, GrowthFit, GrowthFit]:
    """``(winner, polynomial fit, exponential fit)`` for a series.

    The winner is the model with the smaller log-space residual.  For a
    genuinely exponential series the polynomial "degree" keeps growing
    with the range swept, while the exponential rate stays put — when in
    doubt, sweep further.
    """
    poly = fit_polynomial(ns, ys)
    expo = fit_exponential(ns, ys)
    winner = "polynomial" if poly.residual <= expo.residual else "exponential"
    return winner, poly, expo


def looks_polynomial(
    ns: Sequence[float],
    ys: Sequence[float],
    max_degree: float = 8.0,
) -> bool:
    """Convenience check used by benchmark assertions."""
    winner, poly, _ = classify_growth(ns, ys)
    return winner == "polynomial" and poly.coefficient <= max_degree


def looks_exponential(ns: Sequence[float], ys: Sequence[float]) -> bool:
    """Convenience check used by benchmark assertions."""
    winner, _, _ = classify_growth(ns, ys)
    return winner == "exponential"
