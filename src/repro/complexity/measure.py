"""Parameter sweeps with wall-clock timing and work counters.

A sweep runs ``workload(parameter)`` for each parameter value, timing the
call and optionally collecting a dictionary of work counters (iteration
counts, intermediate sizes, CNF sizes, ...) that the growth classifier
can fit alongside raw time — counters are deterministic, so they give
much cleaner scaling curves than wall-clock noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepPoint:
    """One measurement: parameter value, seconds, and work counters."""

    parameter: float
    seconds: float
    counters: Tuple[Tuple[str, float], ...] = ()

    def counter(self, name: str) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        raise KeyError(name)


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, in parameter order."""

    name: str
    points: Tuple[SweepPoint, ...]

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def seconds(self) -> List[float]:
        return [p.seconds for p in self.points]

    def counter_series(self, name: str) -> List[float]:
        return [p.counter(name) for p in self.points]

    def format_rows(self, counter_names: Sequence[str] = ()) -> str:
        """A plain-text table of the sweep, for bench output."""
        header = ["param", "seconds"] + list(counter_names)
        lines = ["\t".join(header)]
        for point in self.points:
            row = [f"{point.parameter:g}", f"{point.seconds:.6f}"]
            for name in counter_names:
                row.append(f"{point.counter(name):g}")
            lines.append("\t".join(row))
        return "\n".join(lines)


def run_sweep(
    name: str,
    parameters: Sequence[float],
    workload: Callable[[float], Optional[Dict[str, float]]],
    repetitions: int = 1,
    warmup: bool = True,
) -> SweepResult:
    """Run ``workload`` across ``parameters`` and time each call.

    ``workload`` may return a dict of work counters (or ``None``).  With
    ``repetitions > 1`` the *minimum* time across runs is reported (the
    standard noise-robust choice); counters come from the last run.
    """
    points: List[SweepPoint] = []
    for parameter in parameters:
        if warmup:
            workload(parameter)
        best = float("inf")
        counters: Dict[str, float] = {}
        for _ in range(max(1, repetitions)):
            start = time.perf_counter()
            outcome = workload(parameter)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            if outcome:
                counters = dict(outcome)
        points.append(
            SweepPoint(
                parameter=float(parameter),
                seconds=best,
                counters=tuple(sorted(counters.items())),
            )
        )
    return SweepResult(name, tuple(points))
