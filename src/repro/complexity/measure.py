"""Parameter sweeps with wall-clock timing and work counters.

A sweep runs ``workload(parameter)`` for each parameter value, timing the
call and optionally collecting a dictionary of work counters (iteration
counts, intermediate sizes, CNF sizes, ...) that the growth classifier
can fit alongside raw time — counters are deterministic, so they give
much cleaner scaling curves than wall-clock noise.

With a ``tracer_factory``, each timed call also records a span trace
(``workload(parameter, tracer)``), so a bench can attribute a point's
time to evaluation phases — see :mod:`repro.obs`.

Failures do not abort a sweep: a point whose workload raises is recorded
with ``outcome`` ``"timeout"`` (a :class:`~repro.errors.ResourceExhausted`
— typically a per-point deadline, see ``benchmarks/_harness.py``) or
``"error"`` (anything else) plus the message, and the sweep continues
with the next parameter.  Pass ``capture_failures=False`` for the old
fail-fast behavior.

With ``parallel=N`` the points are fanned across a
``ProcessPoolExecutor``; results come back in parameter order and carry
the same counters/outcomes/traces as a serial run (the parallel-sweep
tests assert the sequences are identical point for point).  Workloads
must then be picklable — module-level functions or ``functools.partial``
over them, not lambdas or closures.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ResourceExhausted
from repro.obs.tracer import NULL_TRACER, Tracer

_MISSING = object()


def shutdown_pool(pool: Executor, graceful: bool = True) -> None:
    """Shut a worker pool down without ever hanging the caller.

    ``graceful`` waits for in-flight work (the happy path); otherwise
    queued work is cancelled and the call returns immediately — the
    right response to ``KeyboardInterrupt`` or a broken pool, where
    waiting on workers that will never answer would hang forever.
    Shared by :func:`run_sweep` and the :mod:`repro.serve` worker pool.
    """
    if graceful:
        pool.shutdown(wait=True)
    else:
        pool.shutdown(wait=False, cancel_futures=True)


@contextmanager
def pool_scope(max_workers: int) -> Iterator[ProcessPoolExecutor]:
    """A ``ProcessPoolExecutor`` that always shuts down.

    Unlike the executor's own context manager — whose ``__exit__`` is
    ``shutdown(wait=True)`` and therefore blocks on every queued task
    even when the body died on ``KeyboardInterrupt`` — this scope
    cancels outstanding work and returns immediately on any exception,
    and only waits on the clean path.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        yield pool
    except BaseException:
        shutdown_pool(pool, graceful=False)
        raise
    else:
        shutdown_pool(pool, graceful=True)


@dataclass(frozen=True)
class SweepPoint:
    """One measurement: parameter value, seconds, and work counters.

    ``trace`` holds the recording tracer for this point when the sweep
    was run with a ``tracer_factory`` (``None`` otherwise).

    ``outcome`` is ``"ok"``, ``"timeout"`` (the workload raised
    :class:`~repro.errors.ResourceExhausted` — budget or deadline), or
    ``"error"`` (any other exception); ``error`` carries the message for
    the failing cases.  Failing points keep whatever counters the
    workload did not get to report (usually none) and the time spent
    until the failure.
    """

    parameter: float
    seconds: float
    counters: Tuple[Tuple[str, float], ...] = ()
    trace: Optional[Tracer] = None
    outcome: str = "ok"
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def peak_rows(self) -> float:
        """The rows high-water mark for this point.

        Prefers the guard's ``peak_rows`` counter when the workload
        reported one (it sees every charged relation, including those of
        failing points); falls back to the audited
        ``max_intermediate_rows`` for unguarded workloads.
        """
        value = self.counter("peak_rows", default=None)
        if value is None:
            value = self.counter("max_intermediate_rows", default=0.0)
        return float(value)  # type: ignore[arg-type]

    def counter(self, name: str, default: object = _MISSING) -> float:
        """The named counter; ``default`` if given, else ``KeyError``."""
        for key, value in self.counters:
            if key == name:
                return value
        if default is _MISSING:
            raise KeyError(name)
        return default  # type: ignore[return-value]


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, in parameter order."""

    name: str
    points: Tuple[SweepPoint, ...]

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def seconds(self) -> List[float]:
        return [p.seconds for p in self.points]

    def failures(self) -> List[SweepPoint]:
        """The points that did not complete (timeout or error)."""
        return [p for p in self.points if not p.ok]

    def counter_series(
        self, name: str, default: object = _MISSING
    ) -> List[float]:
        """The counter across all points; points missing it get
        ``default`` when given, else the first miss raises ``KeyError``."""
        if default is _MISSING:
            return [p.counter(name) for p in self.points]
        return [p.counter(name, default) for p in self.points]

    def format_rows(self, counter_names: Sequence[str] = ()) -> str:
        """A plain-text table of the sweep, for bench output.

        Points that lack one of ``counter_names`` render ``-`` in that
        column instead of raising.  When any point failed, an ``outcome``
        column is appended so timeouts/errors are visible in the table.
        """
        show_outcome = any(not p.ok for p in self.points)
        header = ["param", "seconds"] + list(counter_names)
        if show_outcome:
            header.append("outcome")
        lines = ["\t".join(header)]
        for point in self.points:
            row = [f"{point.parameter:g}", f"{point.seconds:.6f}"]
            for name in counter_names:
                value = point.counter(name, default=None)
                row.append("-" if value is None else f"{value:g}")
            if show_outcome:
                row.append(point.outcome)
            lines.append("\t".join(row))
        return "\n".join(lines)


def _measure_point(
    parameter: float,
    workload: Callable[..., Optional[Dict[str, float]]],
    repetitions: int,
    warmup: bool,
    tracer_factory: Optional[Callable[[], Tracer]],
    capture_failures: bool,
) -> SweepPoint:
    """Measure one sweep point — the shared serial/parallel work unit.

    Module-level (not a closure) so that parallel sweeps can ship it to
    ``ProcessPoolExecutor`` workers; everything it touches (workload,
    tracer factory, the returned :class:`SweepPoint` with its tracer)
    must therefore be picklable in the parallel case.
    """
    best = float("inf")
    counters: Dict[str, float] = {}
    trace: Optional[Tracer] = None
    failure: Optional[BaseException] = None
    start = time.perf_counter()
    try:
        if warmup:
            if tracer_factory is None:
                workload(parameter)
            else:
                workload(parameter, NULL_TRACER)
        for _ in range(max(1, repetitions)):
            if tracer_factory is None:
                start = time.perf_counter()
                outcome = workload(parameter)
                elapsed = time.perf_counter() - start
            else:
                tracer = tracer_factory()
                start = time.perf_counter()
                outcome = workload(parameter, tracer)
                elapsed = time.perf_counter() - start
                trace = tracer
            best = min(best, elapsed)
            if outcome:
                counters = dict(outcome)
    except Exception as exc:
        if not capture_failures:
            raise
        failure = exc
        best = min(best, time.perf_counter() - start)
    return SweepPoint(
        parameter=float(parameter),
        seconds=best,
        counters=tuple(sorted(counters.items())),
        trace=trace,
        outcome=(
            "ok"
            if failure is None
            else "timeout"
            if isinstance(failure, ResourceExhausted)
            else "error"
        ),
        error="" if failure is None else str(failure),
    )


def run_sweep(
    name: str,
    parameters: Sequence[float],
    workload: Callable[..., Optional[Dict[str, float]]],
    repetitions: int = 1,
    warmup: bool = True,
    tracer_factory: Optional[Callable[[], Tracer]] = None,
    capture_failures: bool = True,
    parallel: int = 1,
) -> SweepResult:
    """Run ``workload`` across ``parameters`` and time each call.

    ``workload`` may return a dict of work counters (or ``None``).  With
    ``repetitions > 1`` the *minimum* time across runs is reported (the
    standard noise-robust choice); counters come from the last run.

    With ``tracer_factory``, the workload is called as
    ``workload(parameter, tracer)`` — a fresh tracer per timed run (the
    last run's tracer lands on :attr:`SweepPoint.trace`), and the
    no-op tracer for the warmup call so warmups stay out of the trace.

    With ``capture_failures`` (the default), a workload that raises is
    recorded as a failing :class:`SweepPoint` (``outcome`` ``"timeout"``
    for :class:`~repro.errors.ResourceExhausted`, ``"error"`` otherwise)
    and the sweep moves on — one diverging point no longer loses the
    whole table.  Failures during warmup count against the point too
    (the workload is deterministic, so the timed run would fail the
    same way).

    With ``parallel > 1``, points are distributed across that many
    worker processes.  The result is deterministic in everything but
    wall-clock: points come back in parameter order with the same
    counters, outcomes, errors, and traces a serial run would produce.
    Per-point guard budgets keep working unchanged — a workload builds
    its budget/deadline when called, i.e. inside its own worker, so a
    fault or timeout in one point is isolated to that process and is
    captured the same way as in a serial sweep.  With
    ``capture_failures=False`` a failing point raises at collection
    time, like the serial fail-fast path.  Workloads, tracer factories,
    and tracers must be picklable.
    """
    if parallel <= 1:
        points = [
            _measure_point(
                parameter, workload, repetitions, warmup,
                tracer_factory, capture_failures,
            )
            for parameter in parameters
        ]
    else:
        with pool_scope(parallel) as pool:
            futures = [
                pool.submit(
                    _measure_point,
                    parameter, workload, repetitions, warmup,
                    tracer_factory, capture_failures,
                )
                for parameter in parameters
            ]
            points = [future.result() for future in futures]
    return SweepResult(name, tuple(points))
