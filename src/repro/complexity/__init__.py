"""Empirical complexity measurement (the Tables 1-3 harness).

The paper's results are asymptotic complexity classes; on a concrete
machine the observable counterpart is *scaling shape*.  This subpackage
provides:

* :mod:`~repro.complexity.measure` — parameter sweeps with timing and
  work counters;
* :mod:`~repro.complexity.fit` — growth-rate classification: fit a
  polynomial model ``t ≈ c·n^d`` and an exponential model
  ``t ≈ c·b^n`` and report which explains the data (and the degree/base);
* :mod:`~repro.complexity.tables` — renderers that print the rows of the
  paper's Tables 1-3 next to this library's measured evidence.
"""

from repro.complexity.measure import SweepPoint, SweepResult, run_sweep
from repro.complexity.fit import GrowthFit, classify_growth, fit_exponential, fit_polynomial
from repro.complexity.tables import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
    render_table,
)

__all__ = [
    "run_sweep",
    "SweepPoint",
    "SweepResult",
    "classify_growth",
    "fit_polynomial",
    "fit_exponential",
    "GrowthFit",
    "TABLE1_ROWS",
    "TABLE2_ROWS",
    "TABLE3_ROWS",
    "render_table",
]
