"""The paper's Tables 1-3 as data, plus a renderer.

Each row records the paper's claimed complexity together with the
library component whose measured behaviour witnesses the claim's *shape*
(the benchmarks under ``benchmarks/`` produce the measurements; see
EXPERIMENTS.md for the recorded outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TableRow:
    """One row of a complexity table."""

    language: str
    columns: Tuple[Tuple[str, str], ...]   # (column name, complexity claim)
    witness: str                           # library component / bench id


TABLE1_ROWS: Tuple[TableRow, ...] = (
    TableRow(
        "FO",
        (
            ("data", "AC0"),
            ("expression", "PSPACE-complete"),
            ("combined", "PSPACE-complete"),
        ),
        "benchmarks/bench_table1_unbounded.py (chain joins: cost exponential in width)",
    ),
    TableRow(
        "FP",
        (
            ("data", "PTIME-complete"),
            ("expression", "EXPTIME-complete"),
            ("combined", "EXPTIME-complete"),
        ),
        "benchmarks/bench_fp_alternation.py (naive strategy: n^{k·l} iterations)",
    ),
    TableRow(
        "ESO",
        (
            ("data", "NP-complete"),
            ("expression", "NEXPTIME-complete"),
            ("combined", "NEXPTIME-complete"),
        ),
        "benchmarks/bench_eso_rewrite.py (grounding without Lemma 3.6: exponential CNF)",
    ),
    TableRow(
        "PFP",
        (
            ("data", "PSPACE-complete"),
            ("expression", "EXPSPACE-complete"),
            ("combined", "EXPSPACE-complete"),
        ),
        "repro.core.pfp_eval (unbounded arity ⇒ exponential live state)",
    ),
)

TABLE2_ROWS: Tuple[TableRow, ...] = (
    TableRow(
        "FO",
        (
            ("data complexity of FO", "AC0"),
            ("combined complexity of FO^k", "PTIME-complete"),
        ),
        "Prop 3.1: repro.core.fo_eval + Prop 3.2: repro.reductions.path_systems "
        "(bench_table2_fo.py, bench_path_systems.py)",
    ),
    TableRow(
        "FP",
        (
            ("data complexity of FP", "PTIME-complete"),
            ("combined complexity of FP^k", "NP ∩ co-NP"),
        ),
        "Thm 3.5: repro.core.alternation + repro.core.certificates "
        "(bench_table2_fp.py)",
    ),
    TableRow(
        "ESO",
        (
            ("data complexity of ESO", "NP-complete"),
            ("combined complexity of ESO^k", "NP-complete"),
        ),
        "Lemma 3.6 + Cor 3.7: repro.core.eso_rewrite / eso_eval "
        "(bench_table2_eso.py)",
    ),
    TableRow(
        "PFP",
        (
            ("data complexity of PFP", "PSPACE-complete"),
            ("combined complexity of PFP^k", "PSPACE-complete"),
        ),
        "Thm 3.8: repro.core.pfp_eval (bench_table2_pfp.py)",
    ),
)

TABLE3_ROWS: Tuple[TableRow, ...] = (
    TableRow(
        "FO",
        (
            ("combined complexity of FO^k", "PTIME-complete"),
            ("expression complexity of FO^k", "ALOGTIME"),
        ),
        "Lemma 4.2 + Thm 4.4: repro.grammar (bench_table3_fo_expression.py)",
    ),
    TableRow(
        "FP",
        (
            ("combined complexity of FP^k", "NP ∩ co-NP"),
            ("expression complexity of FP^k", "NP ∩ co-NP"),
        ),
        "Thm 3.5 applied with fixed B (bench_table2_fp.py, expression sweep)",
    ),
    TableRow(
        "ESO",
        (
            ("combined complexity of ESO^k", "NP-complete"),
            ("expression complexity of ESO^k", "NP-complete"),
        ),
        "Thm 4.5: repro.reductions.sat_to_eso (bench_table3_lower_bounds.py)",
    ),
    TableRow(
        "PFP",
        (
            ("combined complexity of PFP^k", "PSPACE-complete"),
            ("expression complexity of PFP^k", "PSPACE-complete"),
        ),
        "Thm 4.6: repro.reductions.qbf_to_pfp (bench_table3_lower_bounds.py)",
    ),
)


def render_table(
    title: str, rows: Sequence[TableRow], with_witness: bool = True
) -> str:
    """Plain-text rendering of one table, bench-output friendly."""
    lines: List[str] = [title, "=" * len(title)]
    for row in rows:
        claims = "; ".join(f"{name}: {claim}" for name, claim in row.columns)
        lines.append(f"{row.language:5s} | {claims}")
        if with_witness:
            lines.append(f"      witnessed by {row.witness}")
    return "\n".join(lines)
